package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestIntNRange(t *testing.T) {
	r := New(3)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		v := r.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < n/7-800 || c > n/7+800 {
			t.Fatalf("IntN(7) bucket %d has %d hits, want ~%d", i, c, n/7)
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(9)
	child := r.Split()
	// The parent continues a valid stream and the child differs from it.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and split child collided %d/100 times", same)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, v := range xs {
		sum2 += v
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exp mean = %v, want ~1", mean)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}
