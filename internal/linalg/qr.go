package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) rank-deficient matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// LeastSquares solves min ‖A·x − b‖₂ for overdetermined or square A using
// Householder QR. For rank-deficient A the solution sets free variables to
// zero (basic solution from the truncated R).
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != len(b) {
		panic("linalg: LeastSquares shape mismatch")
	}
	m, n := a.Rows, a.Cols
	if m < n {
		// Underdetermined: solve via the normal equations of the
		// transpose (minimum-norm solution) using Cholesky on A·Aᵀ.
		return minNormSolve(a, b)
	}
	qr := a.Clone()
	rhs := make([]float64, m)
	copy(rhs, b)
	// Householder triangularization with on-the-fly application to rhs.
	for k := 0; k < n; k++ {
		// Compute the norm of the k-th column below the diagonal.
		alpha := 0.0
		for i := k; i < m; i++ {
			v := qr.At(i, k)
			alpha += v * v
		}
		alpha = math.Sqrt(alpha)
		if alpha == 0 {
			continue // zero column: leave as is (rank deficiency)
		}
		if qr.At(k, k) > 0 {
			alpha = -alpha
		}
		// Householder vector v = x − alpha·e₁ stored in place.
		qr.Set(k, k, qr.At(k, k)-alpha)
		vnormSq := 0.0
		for i := k; i < m; i++ {
			v := qr.At(i, k)
			vnormSq += v * v
		}
		if vnormSq == 0 {
			continue
		}
		// Apply H = I − 2vvᵀ/vᵀv to remaining columns and rhs.
		for j := k + 1; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += qr.At(i, k) * qr.At(i, j)
			}
			f := 2 * dot / vnormSq
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)-f*qr.At(i, k))
			}
		}
		dot := 0.0
		for i := k; i < m; i++ {
			dot += qr.At(i, k) * rhs[i]
		}
		f := 2 * dot / vnormSq
		for i := k; i < m; i++ {
			rhs[i] -= f * qr.At(i, k)
		}
		// Store R's diagonal entry.
		qr.Set(k, k, alpha)
		for i := k + 1; i < m; i++ {
			// Zero out below-diagonal (the Householder vectors are no
			// longer needed for this column).
			qr.Set(i, k, 0)
		}
	}
	// Back substitution on R·x = rhs[:n]; treat tiny pivots as rank
	// deficiency and set the corresponding variable to zero.
	x := make([]float64, n)
	// Scale-aware pivot threshold.
	maxDiag := 0.0
	for k := 0; k < n; k++ {
		maxDiag = math.Max(maxDiag, math.Abs(qr.At(k, k)))
	}
	tol := 1e-12 * math.Max(maxDiag, 1)
	for k := n - 1; k >= 0; k-- {
		s := rhs[k]
		for j := k + 1; j < n; j++ {
			s -= qr.At(k, j) * x[j]
		}
		d := qr.At(k, k)
		if math.Abs(d) <= tol {
			x[k] = 0
			continue
		}
		x[k] = s / d
	}
	return x, nil
}

// minNormSolve returns the minimum-norm solution of the underdetermined
// system A·x ≈ b via x = Aᵀ(AAᵀ)⁻¹b with a ridge fallback if AAᵀ is
// singular.
func minNormSolve(a *Matrix, b []float64) ([]float64, error) {
	m := a.Rows
	g := NewMatrix(m, m)
	for i := 0; i < m; i++ {
		ri := a.Row(i)
		for j := i; j < m; j++ {
			v := Dot(ri, a.Row(j))
			g.Set(i, j, v)
			g.Set(j, i, v)
		}
	}
	y, err := CholeskySolve(g, b)
	if err != nil {
		// Ridge-regularize.
		for i := 0; i < m; i++ {
			g.Set(i, i, g.At(i, i)+1e-10)
		}
		y, err = CholeskySolve(g, b)
		if err != nil {
			return nil, err
		}
	}
	return a.TMulVec(y), nil
}

// CholeskySolve solves the symmetric positive-definite system G·x = b.
// Callers that need several solves against the same G should factor once
// with NewCholesky instead.
func CholeskySolve(g *Matrix, b []float64) ([]float64, error) {
	if g.Cols != g.Rows || len(b) != g.Rows {
		panic("linalg: CholeskySolve shape mismatch")
	}
	c, err := NewCholesky(g)
	if err != nil {
		return nil, err
	}
	return c.Solve(b), nil
}

// Solve solves the square linear system A·x = b by Gaussian elimination
// with partial pivoting.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("linalg: Solve shape mismatch")
	}
	aug := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot.
		p := k
		best := math.Abs(aug.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(aug.At(i, k)); v > best {
				best, p = v, i
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				t := aug.At(k, j)
				aug.Set(k, j, aug.At(p, j))
				aug.Set(p, j, t)
			}
			x[k], x[p] = x[p], x[k]
		}
		pivot := aug.At(k, k)
		for i := k + 1; i < n; i++ {
			f := aug.At(i, k) / pivot
			if f == 0 {
				continue
			}
			for j := k; j < n; j++ {
				aug.Set(i, j, aug.At(i, j)-f*aug.At(k, j))
			}
			x[i] -= f * x[k]
		}
	}
	for k := n - 1; k >= 0; k-- {
		s := x[k]
		for j := k + 1; j < n; j++ {
			s -= aug.At(k, j) * x[j]
		}
		x[k] = s / aug.At(k, k)
	}
	return x, nil
}
