package linalg

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestMatVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y := a.MulVec([]float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVec = %v", y)
		}
	}
	yt := a.TMulVec([]float64{1, 1, 1})
	wantT := []float64{9, 12}
	for i := range wantT {
		if yt[i] != wantT[i] {
			t.Fatalf("TMulVec = %v", yt)
		}
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	c := a.Mul(b)
	want := FromRows([][]float64{{2, 1}, {4, 3}})
	for i := range c.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %v", c.Data)
		}
	}
}

func TestSolveExact(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("Solve = %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("singular system solved without error")
	}
}

func TestLeastSquaresSquare(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 2}})
	x, err := LeastSquares(a, []float64{6, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-10 || math.Abs(x[1]-2) > 1e-10 {
		t.Fatalf("LeastSquares = %v", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = a + b·t to points on the exact line y = 1 + 2t plus a
	// symmetric perturbation: LS recovers the line.
	a := FromRows([][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}})
	b := []float64{1, 3, 5, 7}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-2) > 1e-10 {
		t.Fatalf("line fit = %v, want [1 2]", x)
	}
}

// Property: the least-squares residual is orthogonal to the column space
// (normal equations hold).
func TestLeastSquaresNormalEquations(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 100; trial++ {
		m := 3 + r.IntN(20)
		n := 1 + r.IntN(min(m, 8))
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = 2*r.Float64() - 1
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = 2*r.Float64() - 1
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		res := Residual(a, x, b)
		g := a.TMulVec(res)
		if Norm2(g) > 1e-8*(1+Norm2(b)) {
			t.Fatalf("normal equations violated: ‖Aᵀr‖ = %v", Norm2(g))
		}
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	// Duplicate columns: solution should still satisfy normal equations.
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := []float64{1, 2, 3}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res := Residual(a, x, b)
	if Norm2(res) > 1e-10 {
		t.Fatalf("rank-deficient residual = %v", Norm2(res))
	}
}

func TestMinNormUnderdetermined(t *testing.T) {
	// x₁ + x₂ = 2 has minimum-norm solution (1, 1).
	a := FromRows([][]float64{{1, 1}})
	x, err := LeastSquares(a, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-1) > 1e-9 {
		t.Fatalf("min-norm solution = %v, want [1 1]", x)
	}
}

func TestCholeskySolve(t *testing.T) {
	g := FromRows([][]float64{{4, 2}, {2, 3}})
	x, err := CholeskySolve(g, []float64{10, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Verify G·x = b.
	y := g.MulVec(x)
	if math.Abs(y[0]-10) > 1e-10 || math.Abs(y[1]-8) > 1e-10 {
		t.Fatalf("Cholesky solution check failed: %v", y)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	g := FromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := CholeskySolve(g, []float64{1, 1}); err == nil {
		t.Fatal("indefinite matrix factored without error")
	}
}

func TestDotNormAxpy(t *testing.T) {
	x := []float64{3, 4}
	if Dot(x, x) != 25 {
		t.Fatal("Dot failed")
	}
	if Norm2(x) != 5 {
		t.Fatal("Norm2 failed")
	}
	y := []float64{1, 1}
	AXPY(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AXPY = %v", y)
	}
}

// Property: random consistent systems are solved exactly.
func TestSolveRandomConsistent(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.IntN(10)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = 2*r.Float64() - 1
		}
		// Strengthen the diagonal to avoid near-singular draws.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+3)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = 2*r.Float64() - 1
		}
		b := a.MulVec(want)
		x, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-8 {
				t.Fatalf("Solve error at %d: %v vs %v", i, x[i], want[i])
			}
		}
	}
}
