package linalg

import (
	"math"
	"testing"
)

// testRNG is a small deterministic generator for test matrices.
type testRNG uint64

func (r *testRNG) next() float64 {
	*r ^= *r << 13
	*r ^= *r >> 7
	*r ^= *r << 17
	return float64(*r%1000)/1000 - 0.5
}

func randMatrix(rows, cols int, sparsity float64, seed uint64) *Matrix {
	r := testRNG(seed)
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		v := r.next()
		if r.next() < sparsity-0.5 { // sparsity fraction of entries zeroed
			v = 0
		}
		m.Data[i] = v
	}
	return m
}

// mulNaive is the textbook i-j-k triple loop — the reference the
// cache-friendly i-k-j kernel must match.
func mulNaive(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func maxAbsDiff(x, y []float64) float64 {
	d := 0.0
	for i := range x {
		d = math.Max(d, math.Abs(x[i]-y[i]))
	}
	return d
}

func TestMulMatchesNaive(t *testing.T) {
	for _, dims := range [][3]int{{3, 4, 5}, {17, 9, 23}, {40, 40, 40}, {1, 7, 1}} {
		a := randMatrix(dims[0], dims[1], 0, 7)
		b := randMatrix(dims[1], dims[2], 0.3, 11)
		got := a.Mul(b)
		want := mulNaive(a, b)
		if d := maxAbsDiff(got.Data, want.Data); d > 1e-12 {
			t.Fatalf("dims %v: Mul differs from naive by %g", dims, d)
		}
	}
}

func TestGramMatchesTransposeMul(t *testing.T) {
	for _, dims := range [][2]int{{5, 3}, {30, 50}, {64, 17}, {200, 90}} {
		a := randMatrix(dims[0], dims[1], 0.5, 13)
		want := a.T().Mul(a)
		for _, workers := range []int{1, 2, 8} {
			got := Gram(a, workers)
			if d := maxAbsDiff(got.Data, want.Data); d != 0 {
				t.Fatalf("dims %v workers %d: Gram differs from AᵀA by %g", dims, workers, d)
			}
		}
	}
}

// TestGramDeterministicAcrossWorkers is the byte-identity contract the
// NNLS determinism guarantee rests on.
func TestGramDeterministicAcrossWorkers(t *testing.T) {
	a := randMatrix(120, 200, 0.4, 29)
	want := Gram(a, 1)
	for _, workers := range []int{2, 3, 16} {
		got := Gram(a, workers)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("workers=%d: Gram[%d] = %v, want %v", workers, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatVecParallelIdentical(t *testing.T) {
	a := randMatrix(150, 300, 0.4, 17)
	x := make([]float64, 300)
	xr := make([]float64, 150)
	r := testRNG(23)
	for i := range x {
		x[i] = r.next()
	}
	for i := range xr {
		xr[i] = r.next()
	}
	wantY := a.MulVecWith(x, 1)
	wantT := a.TMulVecWith(xr, 1)
	for _, workers := range []int{2, 4, 32} {
		if d := maxAbsDiff(a.MulVecWith(x, workers), wantY); d != 0 {
			t.Fatalf("MulVecWith workers=%d differs by %g", workers, d)
		}
		if d := maxAbsDiff(a.TMulVecWith(xr, workers), wantT); d != 0 {
			t.Fatalf("TMulVecWith workers=%d differs by %g", workers, d)
		}
	}
}

func TestSparseMatchesDense(t *testing.T) {
	a := randMatrix(80, 130, 0.6, 41)
	s := NewSparse(a)
	if s.NNZ() == 0 || s.Density() >= 1 {
		t.Fatalf("unexpected sparsity: nnz=%d density=%v", s.NNZ(), s.Density())
	}
	x := make([]float64, 130)
	xr := make([]float64, 80)
	r := testRNG(43)
	for i := range x {
		x[i] = r.next()
		if i%3 == 0 {
			x[i] = 0 // exercise the column-skip path
		}
	}
	for i := range xr {
		xr[i] = r.next()
	}
	if d := maxAbsDiff(s.MulVec(x), a.MulVecWith(x, 1)); d > 1e-12 {
		t.Fatalf("Sparse.MulVec differs by %g", d)
	}
	// TMulVec shares the dense summation order exactly.
	if d := maxAbsDiff(s.TMulVec(xr), a.TMulVecWith(xr, 1)); d != 0 {
		t.Fatalf("Sparse.TMulVec differs by %g", d)
	}
}

func TestCholeskyFactorReuse(t *testing.T) {
	// SPD matrix via Gram of a well-conditioned tall matrix.
	a := randMatrix(60, 12, 0, 51)
	for j := 0; j < 12; j++ {
		a.Set(j, j, a.At(j, j)+3) // boost the diagonal for conditioning
	}
	g := Gram(a, 1)
	c, err := NewCholesky(g)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 12)
	r := testRNG(53)
	for i := range b {
		b[i] = r.next()
	}
	x := c.Solve(b)
	if d := maxAbsDiff(g.MulVec(x), b); d > 1e-8 {
		t.Fatalf("Cholesky solve residual %g", d)
	}
	// A second solve against the same factorization must work too.
	x2 := c.Solve(g.MulVec(x))
	if d := maxAbsDiff(x2, x); d > 1e-8 {
		t.Fatalf("Cholesky re-solve drift %g", d)
	}
}
