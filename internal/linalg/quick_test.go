package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func cleanVec(xs []float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		if i < len(xs) && !math.IsNaN(xs[i]) && !math.IsInf(xs[i], 0) {
			// Keep magnitudes tame so property tolerances are meaningful.
			out[i] = math.Mod(xs[i], 8)
		}
	}
	return out
}

func cleanMat(xs []float64, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		if i < len(xs) && !math.IsNaN(xs[i]) && !math.IsInf(xs[i], 0) {
			m.Data[i] = math.Mod(xs[i], 8)
		}
	}
	return m
}

// Property: transpose is an involution and MulVec/TMulVec are consistent
// through it.
func TestTransposeInvolutionAndConsistency(t *testing.T) {
	f := func(raw [24]float64, vraw [6]float64) bool {
		a := cleanMat(raw[:], 4, 6)
		att := a.T().T()
		for i := range a.Data {
			if a.Data[i] != att.Data[i] {
				return false
			}
		}
		x := cleanVec(vraw[:], 6)
		y1 := a.MulVec(x)
		y2 := a.T().TMulVec(x)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix-vector multiplication is linear:
// A(αx + y) = αAx + Ay.
func TestMulVecLinearity(t *testing.T) {
	f := func(raw [20]float64, xraw, yraw [5]float64, alphaRaw float64) bool {
		a := cleanMat(raw[:], 4, 5)
		x := cleanVec(xraw[:], 5)
		y := cleanVec(yraw[:], 5)
		alpha := math.Mod(alphaRaw, 4)
		if math.IsNaN(alpha) {
			alpha = 1
		}
		comb := make([]float64, 5)
		for i := range comb {
			comb[i] = alpha*x[i] + y[i]
		}
		left := a.MulVec(comb)
		ax := a.MulVec(x)
		ay := a.MulVec(y)
		for i := range left {
			if math.Abs(left[i]-(alpha*ax[i]+ay[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot satisfies Cauchy–Schwarz: |xᵀy| ≤ ‖x‖‖y‖.
func TestCauchySchwarz(t *testing.T) {
	f := func(xraw, yraw [8]float64) bool {
		x := cleanVec(xraw[:], 8)
		y := cleanVec(yraw[:], 8)
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)x = A(Bx).
func TestMulAssociatesWithMulVec(t *testing.T) {
	f := func(araw [12]float64, braw [20]float64, xraw [5]float64) bool {
		a := cleanMat(araw[:], 3, 4)
		b := cleanMat(braw[:], 4, 5)
		x := cleanVec(xraw[:], 5)
		left := a.Mul(b).MulVec(x)
		right := a.MulVec(b.MulVec(x))
		for i := range left {
			if math.Abs(left[i]-right[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
