// Package linalg provides the dense linear-algebra kernel used by the
// weight-estimation solvers: matrices in row-major layout, Householder QR
// least squares, Cholesky factorization, and triangular solves. It is
// deliberately small — just what Lawson–Hanson NNLS, KKT systems, and the
// simplex LP solver require — but numerically careful (column pivoting is
// unnecessary for our well-scaled systems; Householder reflections are).
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[i*Cols+j] = A[i][j]
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns A[i][j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns A[i][j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// MulVec returns A·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// TMulVec returns Aᵀ·x without forming the transpose.
func (m *Matrix) TMulVec(x []float64) []float64 {
	if len(x) != m.Rows {
		panic("linalg: TMulVec shape mismatch")
	}
	y := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			y[j] += v * xi
		}
	}
	return y
}

// Mul returns A·B.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic("linalg: Mul shape mismatch")
	}
	c := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Row(i)
		crow := c.Row(i)
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bkj := range brow {
				crow[j] += aik * bkj
			}
		}
	}
	return c
}

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns ‖x‖₂.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// AXPY computes y += a·x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// Residual returns A·x − b as a new vector.
func Residual(a *Matrix, x, b []float64) []float64 {
	r := a.MulVec(x)
	for i := range r {
		r[i] -= b[i]
	}
	return r
}
