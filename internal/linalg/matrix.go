// Package linalg provides the dense linear-algebra kernel used by the
// weight-estimation solvers: matrices in row-major layout, Householder QR
// least squares, Cholesky factorization, and triangular solves. It is
// deliberately small — just what Lawson–Hanson NNLS, KKT systems, and the
// simplex LP solver require — but numerically careful (column pivoting is
// unnecessary for our well-scaled systems; Householder reflections are).
package linalg

import (
	"fmt"
	"math"

	"repro/internal/parallel"
)

// matvecParallelThreshold is the element count above which the dense
// matrix–vector kernels fan out across the worker pool. Below it the
// goroutine handoff costs more than the arithmetic.
const matvecParallelThreshold = 1 << 16

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[i*Cols+j] = A[i][j]
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns A[i][j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns A[i][j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// MulVec returns A·x. Large products fan out across the worker pool
// (each y[i] is one row's dot product, so the parallel result is
// byte-identical to the serial one).
func (m *Matrix) MulVec(x []float64) []float64 {
	return m.MulVecWith(x, autoWorkers(m.Rows*m.Cols))
}

// MulVecWith is MulVec with an explicit worker count (0 = auto).
func (m *Matrix) MulVecWith(x []float64, workers int) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	parallel.ForEach(m.Rows, workers, func(i int) {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	})
	return y
}

// TMulVec returns Aᵀ·x without forming the transpose. Large products
// fan out by contiguous column stripes: each worker owns an output range
// y[lo:hi] and scans every row's [lo:hi) segment with i ascending, so
// every worker count produces identical bytes.
func (m *Matrix) TMulVec(x []float64) []float64 {
	return m.TMulVecWith(x, autoWorkers(m.Rows*m.Cols))
}

// TMulVecWith is TMulVec with an explicit worker count (0 = auto).
func (m *Matrix) TMulVecWith(x []float64, workers int) []float64 {
	if len(x) != m.Rows {
		panic("linalg: TMulVec shape mismatch")
	}
	n := m.Cols
	y := make([]float64, n)
	workers = parallel.Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		m.tMulVecStripe(y, x, 0, n)
		return y
	}
	stripe := (n + workers - 1) / workers
	parallel.ForEachChunk(workers, workers, 1, func(w int) {
		lo := w * stripe
		hi := lo + stripe
		if hi > n {
			hi = n
		}
		if lo < hi {
			m.tMulVecStripe(y, x, lo, hi)
		}
	})
	return y
}

// tMulVecStripe accumulates y[lo:hi] += Σᵢ x[i]·A[i][lo:hi].
func (m *Matrix) tMulVecStripe(y, x []float64, lo, hi int) {
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols+lo : i*m.Cols+hi]
		ys := y[lo:hi]
		for j, v := range row {
			ys[j] += v * xi
		}
	}
}

// autoWorkers picks the auto-parallelism degree for a kernel touching
// `elems` matrix elements: serial below the threshold, the shared pool
// above it.
func autoWorkers(elems int) int {
	if elems < matvecParallelThreshold {
		return 1
	}
	return parallel.Workers(0)
}

// Mul returns A·B. The serial core is the cache-friendly i-k-j order
// (C's row i accumulates scaled rows of B, so all three matrices stream
// row-major); large products additionally fan out across rows of C,
// which preserves bytes because each output row has a single writer.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic("linalg: Mul shape mismatch")
	}
	c := NewMatrix(m.Rows, b.Cols)
	workers := autoWorkers(m.Rows * b.Cols)
	parallel.ForEach(m.Rows, workers, func(i int) {
		arow := m.Row(i)
		crow := c.Row(i)
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bkj := range brow {
				crow[j] += aik * bkj
			}
		}
	})
	return c
}

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns ‖x‖₂.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// AXPY computes y += a·x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// Residual returns A·x − b as a new vector.
func Residual(a *Matrix, x, b []float64) []float64 {
	r := a.MulVec(x)
	for i := range r {
		r[i] -= b[i]
	}
	return r
}
