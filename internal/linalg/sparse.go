package linalg

// Sparse is a read-only compressed view of a Matrix, stored in both
// CSR (row-major) and CSC (column-major) form. Design matrices are the
// motivating use: a range query intersects only the buckets near it, so
// the Equation 6/7 matrices are typically well under half dense, and the
// iterative solvers (FISTA, Lawson–Hanson gradient refresh) spend almost
// all their time in A·x / Aᵀ·x products over them.
//
// The dual storage lets each product pick the traversal that exploits
// vector sparsity too:
//
//   - MulVec (A·x) walks CSC columns, skipping every column whose x[j]
//     is zero — simplex-projected iterates are mostly zeros, so this
//     routinely skips the bulk of the matrix;
//   - TMulVec (Aᵀ·x) walks CSR rows, skipping rows with x[i] == 0, in
//     exactly the dense kernel's summation order.
type Sparse struct {
	Rows, Cols int
	// CSR: row i's entries are (ci[k], cv[k]) for k in [rp[i], rp[i+1]).
	rp []int32
	ci []int32
	cv []float64
	// CSC: column j's entries are (ri[k], rv[k]) for k in [cp[j], cp[j+1]).
	cp []int32
	ri []int32
	rv []float64
}

// NewSparse compresses a into CSR+CSC form. The input is not retained.
func NewSparse(a *Matrix) *Sparse {
	m, n := a.Rows, a.Cols
	nnz := 0
	for _, v := range a.Data {
		if v != 0 {
			nnz++
		}
	}
	s := &Sparse{
		Rows: m, Cols: n,
		rp: make([]int32, m+1), ci: make([]int32, 0, nnz), cv: make([]float64, 0, nnz),
		cp: make([]int32, n+1), ri: make([]int32, nnz), rv: make([]float64, nnz),
	}
	// CSR pass (and per-column counts for the CSC pass).
	colCount := make([]int32, n)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			if v == 0 {
				continue
			}
			s.ci = append(s.ci, int32(j))
			s.cv = append(s.cv, v)
			colCount[j]++
		}
		s.rp[i+1] = int32(len(s.ci))
	}
	// CSC pass: prefix-sum the counts, then scatter rows in ascending-i
	// order so each column's entries are sorted by row.
	for j := 0; j < n; j++ {
		s.cp[j+1] = s.cp[j] + colCount[j]
	}
	fill := make([]int32, n)
	copy(fill, s.cp[:n])
	for i := 0; i < m; i++ {
		for k := s.rp[i]; k < s.rp[i+1]; k++ {
			j := s.ci[k]
			at := fill[j]
			s.ri[at] = int32(i)
			s.rv[at] = s.cv[k]
			fill[j] = at + 1
		}
	}
	return s
}

// NNZ returns the number of stored (non-zero) entries.
func (s *Sparse) NNZ() int { return len(s.cv) }

// Density returns NNZ / (Rows·Cols).
func (s *Sparse) Density() float64 {
	if s.Rows == 0 || s.Cols == 0 {
		return 0
	}
	return float64(s.NNZ()) / (float64(s.Rows) * float64(s.Cols))
}

// MulVecInto computes y = A·x, zeroing y first. Columns with x[j] == 0
// are skipped entirely. Accumulation is column-major, so individual sums
// may differ from the dense kernel by rounding (never by magnitude); the
// order is fixed, so results are deterministic.
func (s *Sparse) MulVecInto(y, x []float64) {
	if len(x) != s.Cols || len(y) != s.Rows {
		panic("linalg: Sparse.MulVecInto shape mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < s.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		ri := s.ri[s.cp[j]:s.cp[j+1]]
		rv := s.rv[s.cp[j]:s.cp[j+1]:s.cp[j+1]]
		for k, i := range ri {
			y[i] += rv[k] * xj
		}
	}
}

// MulVec returns A·x as a new vector.
func (s *Sparse) MulVec(x []float64) []float64 {
	y := make([]float64, s.Rows)
	s.MulVecInto(y, x)
	return y
}

// TMulVecInto computes y = Aᵀ·x, zeroing y first, in the dense kernel's
// row-major summation order (rows with x[i] == 0 are skipped, exactly as
// Matrix.TMulVec does).
func (s *Sparse) TMulVecInto(y, x []float64) {
	if len(x) != s.Rows || len(y) != s.Cols {
		panic("linalg: Sparse.TMulVecInto shape mismatch")
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < s.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		ci := s.ci[s.rp[i]:s.rp[i+1]]
		cv := s.cv[s.rp[i]:s.rp[i+1]:s.rp[i+1]]
		for k, j := range ci {
			y[j] += cv[k] * xi
		}
	}
}

// TMulVec returns Aᵀ·x as a new vector.
func (s *Sparse) TMulVec(x []float64) []float64 {
	y := make([]float64, s.Cols)
	s.TMulVecInto(y, x)
	return y
}
