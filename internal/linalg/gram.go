package linalg

import (
	"math"

	"repro/internal/parallel"
)

// gramParallelThreshold is the m·n² operation count above which Gram
// fans out across the worker pool.
const gramParallelThreshold = 1 << 18

// Gram returns the Gram matrix AᵀA, the kernel of the normal equations
// used by the NNLS weight-estimation path. workers ≤ 0 means auto.
//
// The computation is blocked by output row: worker w owns a contiguous
// range of rows k of G and computes G[k][j] = Σᵢ A[i][k]·A[i][j] for
// j ≥ k with i ascending, exploiting column sparsity (a zero A[i][k]
// skips the whole row-i contribution). Because every output entry is
// produced by exactly one worker with a fixed summation order, the
// result is byte-identical for every worker count — the determinism
// contract of internal/parallel.
func Gram(a *Matrix, workers int) *Matrix {
	m, n := a.Rows, a.Cols
	g := NewMatrix(n, n)
	if n == 0 {
		return g
	}
	w := 1
	if m*n*n >= gramParallelThreshold {
		w = parallel.Workers(workers)
	}
	parallel.ForEachChunk(n, w, 0, func(k int) {
		gk := g.Row(k)
		for i := 0; i < m; i++ {
			row := a.Data[i*n : (i+1)*n]
			v := row[k]
			if v == 0 {
				continue
			}
			for j := k; j < n; j++ {
				gk[j] += v * row[j]
			}
		}
	})
	// Mirror the strict upper triangle.
	for k := 0; k < n; k++ {
		for j := k + 1; j < n; j++ {
			g.Data[j*n+k] = g.Data[k*n+j]
		}
	}
	return g
}

// Cholesky is a reusable LLᵀ factorization of a symmetric positive-
// definite matrix, letting callers amortize the O(n³) factorization over
// several solves (e.g. an iterative-refinement step on the NNLS normal
// equations).
type Cholesky struct {
	l *Matrix
}

// NewCholesky factors g = L·Lᵀ. It returns ErrSingular if g is not
// (numerically) positive definite.
func NewCholesky(g *Matrix) (*Cholesky, error) {
	n := g.Rows
	if g.Cols != n {
		panic("linalg: NewCholesky needs a square matrix")
	}
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := g.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= v * v
		}
		if d <= 0 {
			return nil, ErrSingular
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := g.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve returns the x with L·Lᵀ·x = b.
func (c *Cholesky) Solve(b []float64) []float64 {
	l := c.l
	n := l.Rows
	if len(b) != n {
		panic("linalg: Cholesky.Solve shape mismatch")
	}
	// Forward solve L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back solve Lᵀ·x = y (reusing y's storage for x would alias reads).
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}
