package load

import (
	"bytes"
	"testing"
	"time"
)

func testSpec() ScheduleSpec {
	return ScheduleSpec{
		Seed:     42,
		Rate:     2000,
		Duration: 500 * time.Millisecond,
		Arrival:  ArrivalExp,
		Mix:      DefaultMix(),
	}
}

// renderSchedule canonicalizes a whole schedule (order, timing, classes,
// seeds, and exact request payloads) into one byte string.
func renderSchedule(t *testing.T, events []Event, model string) []byte {
	t.Helper()
	var buf []byte
	var err error
	for _, ev := range events {
		buf, err = AppendEventBytes(buf, ev, model)
		if err != nil {
			t.Fatalf("AppendEventBytes(event %d): %v", ev.Index, err)
		}
	}
	return buf
}

// TestScheduleDeterministicAcrossWorkers is the open-loop determinism
// gate: the same spec builds the same schedule byte-for-byte, and
// partitioning it across any worker count covers exactly the same events
// with the same intended times and payloads.
func TestScheduleDeterministicAcrossWorkers(t *testing.T) {
	spec := testSpec()
	events, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty schedule")
	}
	base := renderSchedule(t, events, "default")

	// A second build of the same spec is bit-identical.
	again, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base, renderSchedule(t, again, "default")) {
		t.Fatal("rebuilding the same spec changed the schedule")
	}

	for _, workers := range []int{1, 4, 8} {
		parts := Partition(events, workers)
		if len(parts) != workers {
			t.Fatalf("Partition(%d) returned %d partitions", workers, len(parts))
		}
		merged := make([]Event, len(events))
		seen := 0
		for w, part := range parts {
			prev := time.Duration(-1)
			for _, ev := range part {
				if ev.Index%workers != w {
					t.Fatalf("workers=%d: event %d landed on worker %d", workers, ev.Index, w)
				}
				if ev.At < prev {
					t.Fatalf("workers=%d: worker %d partition not in schedule order", workers, w)
				}
				prev = ev.At
				merged[ev.Index] = ev
				seen++
			}
		}
		if seen != len(events) {
			t.Fatalf("workers=%d: partitions cover %d of %d events", workers, seen, len(events))
		}
		if !bytes.Equal(base, renderSchedule(t, merged, "default")) {
			t.Fatalf("workers=%d: reassembled schedule diverged from the global one", workers)
		}
	}
}

// TestScheduleMixCoverage: with the default mix over ~1000 events, every
// weighted class (including the 0.02-weight hot-swap trickle) appears,
// and class shares roughly track the weights.
func TestScheduleMixCoverage(t *testing.T) {
	spec := testSpec()
	spec.Duration = 2 * time.Second // ~4000 events: enough for the swap trickle
	events, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	var counts [NumClasses]int
	for _, ev := range events {
		if ev.Class >= NumClasses {
			t.Fatalf("event %d has out-of-range class %d", ev.Index, ev.Class)
		}
		counts[ev.Class]++
	}
	mix := DefaultMix()
	total := 0.0
	for _, w := range mix {
		total += w
	}
	for cl, n := range counts {
		if mix[cl] > 0 && n == 0 {
			t.Errorf("class %s has weight %v but zero events", Class(cl), mix[cl])
		}
		// Loose share check on the heavyweight classes only.
		if mix[cl]/total >= 0.1 {
			want := mix[cl] / total * float64(len(events))
			if float64(n) < want*0.7 || float64(n) > want*1.3 {
				t.Errorf("class %s: %d events, want ~%.0f", Class(cl), n, want)
			}
		}
	}
}

// TestScheduleRate: both arrival processes hit the target mean rate.
func TestScheduleRate(t *testing.T) {
	for _, arrival := range []Arrival{ArrivalExp, ArrivalUniform} {
		spec := testSpec()
		spec.Arrival = arrival
		spec.Duration = 5 * time.Second
		events, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		want := spec.Rate * spec.Duration.Seconds()
		if got := float64(len(events)); got < want*0.9 || got > want*1.1 {
			t.Errorf("%s arrivals: %v events over %v at rate %v, want ~%v",
				arrival, got, spec.Duration, spec.Rate, want)
		}
		for i, ev := range events {
			if ev.At < 0 || ev.At >= spec.Duration {
				t.Fatalf("%s arrivals: event %d at %v outside [0,%v)", arrival, i, ev.At, spec.Duration)
			}
		}
	}
}

func TestScheduleSpecValidation(t *testing.T) {
	bad := []ScheduleSpec{
		{Seed: 1, Rate: 0, Duration: time.Second, Mix: DefaultMix()},
		{Seed: 1, Rate: -5, Duration: time.Second, Mix: DefaultMix()},
		{Seed: 1, Rate: 100, Duration: 0, Mix: DefaultMix()},
		{Seed: 1, Rate: 100, Duration: time.Second},                          // zero mix
		{Seed: 1, Rate: 1e9, Duration: 1e6 * time.Second, Mix: DefaultMix()}, // over ceiling
	}
	for i, spec := range bad {
		if _, err := spec.Build(); err == nil {
			t.Errorf("spec %d: Build accepted an invalid spec", i)
		}
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("single=6, batch=1, swap=0.02")
	if err != nil {
		t.Fatal(err)
	}
	if m[ClassSingle] != 6 || m[ClassBatch] != 1 || m[ClassSwap] != 0.02 {
		t.Fatalf("ParseMix weights wrong: %+v", m)
	}
	if m[ClassStream] != 0 || m[ClassBin] != 0 || m[ClassFeedback] != 0 {
		t.Fatalf("omitted classes nonzero: %+v", m)
	}
	for _, bad := range []string{"nope=1", "single", "single=x", "single=-1", "", "single=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
	// Round trip through the map form.
	m2, err := MixFromMap(m.Map())
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m {
		t.Fatalf("MixFromMap(Map()) = %+v, want %+v", m2, m)
	}
	if d, err := MixFromMap(nil); err != nil || d != DefaultMix() {
		t.Fatalf("MixFromMap(nil) = %+v, %v", d, err)
	}
}

func TestParseClassAndArrival(t *testing.T) {
	for i := Class(0); i < NumClasses; i++ {
		got, err := ParseClass(i.String())
		if err != nil || got != i {
			t.Errorf("ParseClass(%q) = %v, %v", i.String(), got, err)
		}
	}
	if _, err := ParseClass("mystery"); err == nil {
		t.Error("ParseClass accepted an unknown class")
	}
	if a, err := ParseArrival(""); err != nil || a != ArrivalExp {
		t.Errorf("ParseArrival(\"\") = %v, %v", a, err)
	}
	if a, err := ParseArrival("uniform"); err != nil || a != ArrivalUniform {
		t.Errorf("ParseArrival(uniform) = %v, %v", a, err)
	}
	if _, err := ParseArrival("pareto"); err == nil {
		t.Error("ParseArrival accepted an unknown process")
	}
}
