package load

import "time"

// internal/load sits in the deterministic scope: the schedule, payloads,
// SLO evaluation, and report layout are pure functions of their inputs.
// Only the runner may touch the wall clock — to pace the open loop and to
// measure latencies — and every clock read is concentrated in the
// suppressed one-liners below (the internal/obs idiom), so it can never
// leak into what gets sent or how results are judged.

// monotonicNow captures an instant carrying Go's monotonic reading: the
// run epoch and per-request send marks.
//
//selvet:ignore detrand latency epoch capture only; never feeds schedules or payloads
func monotonicNow() time.Time { return time.Now() }

// monotonicSince returns the elapsed time since a monotonicNow instant,
// immune to wall-clock steps.
//
//selvet:ignore detrand latency measurement only; never feeds schedules or payloads
func monotonicSince(t0 time.Time) time.Duration { return time.Since(t0) }

// sleepFor blocks for d (no-op when d <= 0): the open-loop pacer waiting
// out the gap to the next intended start.
//
//selvet:ignore detrand open-loop pacing sleep; never feeds schedules or payloads
func sleepFor(d time.Duration) { time.Sleep(d) }

// deadlineIn returns the wall-clock instant d from now, for net.Conn
// deadlines on the binary protocol.
//
//selvet:ignore detrand I/O deadline arming only; never feeds schedules or payloads
func deadlineIn(d time.Duration) time.Time { return time.Now().Add(d) }
