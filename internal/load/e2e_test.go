package load_test

import (
	"bytes"
	"context"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/load"
	"repro/internal/serve"
)

// startServer brings up a full selserve in-process: HTTP handler behind
// httptest, binary protocol on a loopback listener, online updates on,
// and the standard 256-bucket grid registered as the default model.
func startServer(t *testing.T) (baseURL, binAddr string) {
	t.Helper()
	s := serve.NewServer(serve.Options{
		OnlineUpdates:     true,
		MinRetrainSamples: 1 << 30, // no background retrain noise
	})
	s.Registry().Set(serve.DefaultModelName, "test", load.GridModel(load.SwapBuckets, 0))

	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ServeBin(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("ServeBin: %v", err)
		}
	})
	return hs.URL, ln.Addr().String()
}

// TestOpenLoopSmoke drives the full mixed workload against a live
// in-process server and checks the whole chain: run, scrape bookends,
// report assembly, and SLO judgment in both directions.
func TestOpenLoopSmoke(t *testing.T) {
	base, bin := startServer(t)

	opts := load.Options{
		BaseURL: base,
		BinAddr: bin,
		Workers: 4,
		Timeout: 10 * time.Second,
		Spec: load.ScheduleSpec{
			Seed:     7,
			Rate:     400,
			Duration: 500 * time.Millisecond,
			Arrival:  load.ArrivalExp,
			Mix:      load.DefaultMix(),
		},
	}
	// Weight every class heavily enough that 200 events cover them all.
	var err error
	opts.Spec.Mix, err = load.ParseMix("single=4,batch=1,stream=1,bin=2,feedback=1,swap=0.5")
	if err != nil {
		t.Fatal(err)
	}

	before, err := load.ScrapeMetrics(base, 10*time.Second)
	if err != nil {
		t.Fatalf("before scrape: %v", err)
	}
	res, err := load.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	after, err := load.ScrapeMetrics(base, 10*time.Second)
	if err != nil {
		t.Fatalf("after scrape: %v", err)
	}

	col := res.Collector
	if got := col.TotalSent(); got != int64(res.Events) {
		t.Fatalf("sent %d of %d scheduled events", got, res.Events)
	}
	if errs := col.TotalErrors(); errs != 0 {
		var buf bytes.Buffer
		_ = col.Registry().WritePrometheus(&buf)
		t.Fatalf("%d request errors on loopback:\n%s", errs, buf.String())
	}
	// Every scheduled class completed requests, and both views populated.
	for i := load.Class(0); i < load.NumClasses; i++ {
		cs := col.Class(i)
		if opts.Spec.Mix[i] >= 1 && cs.Sent.Value() == 0 {
			t.Errorf("class %s: no requests sent", i)
		}
		if cs.Sent.Value() > 0 {
			if cs.Intended.Count() != cs.Sent.Value() || cs.Actual.Count() != cs.Sent.Value() {
				t.Errorf("class %s: sent %d, intended %d, actual %d",
					i, cs.Sent.Value(), cs.Intended.Count(), cs.Actual.Count())
			}
		}
	}

	report := load.BuildReport(opts, res, before, after)
	if report.Server == nil {
		t.Fatal("report has no server block despite both scrapes")
	}
	// The server's own request counters must account for the HTTP traffic
	// we sent (single+batch share a route; stream, feedback, swap have
	// their own; bin lands in the wirebin counters).
	httpSent := col.Class(load.ClassSingle).Sent.Value() +
		col.Class(load.ClassBatch).Sent.Value() +
		col.Class(load.ClassStream).Sent.Value() +
		col.Class(load.ClassFeedback).Sent.Value() +
		col.Class(load.ClassSwap).Sent.Value()
	if d := report.Server.CounterDeltas["selserve_http_requests_total"]; d < float64(httpSent) {
		t.Errorf("server saw %v HTTP requests, client sent %d", d, httpSent)
	}
	// The correlation the harness exists for: server-side route latency
	// histograms moved during the interval.
	if len(report.Server.HistogramDeltas) == 0 {
		t.Error("no server histogram deltas in the report")
	}

	// A permissive manifest passes...
	pass, err := load.ParseManifest(strings.NewReader(`{
		"name": "smoke",
		"min_requests": 10,
		"max_error_rate": 0.001,
		"max_feedback_lost": 0,
		"latency": {"single": {"p99_us": 5000000}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	verdict := report.Judge(pass, col, load.FeedbackLostDelta(before, after))
	if !verdict.Pass {
		t.Fatalf("permissive SLO failed: %v", verdict.Violations)
	}
	// ...and an impossible one is caught (the seeded-violation self-check).
	violate, err := load.ParseManifest(strings.NewReader(`{
		"name": "impossible",
		"latency": {"single": {"p99_us": 0.001}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	verdict = load.BuildReport(opts, res, before, after).Judge(violate, col, 0)
	if verdict.Pass || len(verdict.Violations) == 0 {
		t.Fatal("impossible SLO passed")
	}

	// The artifact renders and carries the key blocks.
	var out bytes.Buffer
	if err := report.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"tool": "selload"`, `"client"`, `"server"`, `"slo"`, `"intended"`, `"actual"`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report JSON lacks %s", want)
		}
	}
}

// TestRunValidation: a bin-weighted mix without a binary address must be
// rejected before any traffic is sent.
func TestRunValidation(t *testing.T) {
	_, err := load.Run(load.Options{
		BaseURL: "http://127.0.0.1:1",
		Spec: load.ScheduleSpec{
			Seed: 1, Rate: 10, Duration: 100 * time.Millisecond, Mix: load.DefaultMix(),
		},
	})
	if err == nil || !strings.Contains(err.Error(), "BinAddr") {
		t.Fatalf("Run without BinAddr: err = %v", err)
	}
	if _, err := load.Run(load.Options{Spec: load.ScheduleSpec{Seed: 1, Rate: 10, Duration: time.Second, Mix: load.DefaultMix()}}); err == nil {
		t.Fatal("Run without BaseURL succeeded")
	}
}
