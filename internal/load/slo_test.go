package load

import (
	"strings"
	"testing"
)

func TestParseManifest(t *testing.T) {
	m, err := ParseManifest(strings.NewReader(`{
		"name": "smoke",
		"min_requests": 50,
		"max_error_rate": 0.001,
		"max_feedback_lost": 0,
		"latency": {"single": {"p99_us": 1000}, "bin": {"p50_us": 200, "p999_us": 5000}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "smoke" || m.MinRequests != 50 {
		t.Fatalf("parsed manifest wrong: %+v", m)
	}
	if m.MaxErrorRate == nil || *m.MaxErrorRate != 0.001 {
		t.Fatal("max_error_rate not parsed")
	}
	if m.MaxFeedbackLost == nil || *m.MaxFeedbackLost != 0 {
		t.Fatal("explicit zero max_feedback_lost must parse as a bound, not absence")
	}
	if m.Latency["single"].P99Us != 1000 {
		t.Fatal("latency block not parsed")
	}

	for name, bad := range map[string]string{
		"unknown field":  `{"name":"x","p99_typo":1}`,
		"unknown class":  `{"name":"x","latency":{"mystery":{"p99_us":1}}}`,
		"negative bound": `{"name":"x","latency":{"single":{"p99_us":-1}}}`,
		"bad error rate": `{"name":"x","max_error_rate":2}`,
		"negative lost":  `{"name":"x","max_feedback_lost":-1}`,
		"not json":       `p99 < 1ms`,
	} {
		if _, err := ParseManifest(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: ParseManifest accepted %s", name, bad)
		}
	}
}

// evalCollector builds a collector where class single completed 1000
// requests at ~100µs intended latency with 1 error.
func evalCollector() *Collector {
	c := NewCollector()
	cs := c.Class(ClassSingle)
	for i := 0; i < 1000; i++ {
		cs.Sent.Add(1)
		cs.Intended.Observe(100e-6)
		cs.Actual.Observe(80e-6)
	}
	cs.Sent.Add(1)
	cs.Errors.Add(1)
	return c
}

func fptr(v float64) *float64 { return &v }
func iptr(v int64) *int64     { return &v }

func TestEvaluatePass(t *testing.T) {
	m := &Manifest{
		Name:            "pass",
		MinRequests:     100,
		MaxErrorRate:    fptr(0.01),
		MaxFeedbackLost: iptr(0),
		Latency:         map[string]LatencySLO{"single": {P99Us: 1000, MaxUs: 10000}},
	}
	if vs := m.Evaluate(evalCollector(), 0); len(vs) != 0 {
		t.Fatalf("clean run violated: %v", vs)
	}
}

func TestEvaluateViolations(t *testing.T) {
	col := evalCollector()
	cases := []struct {
		name  string
		m     Manifest
		lost  int64
		check string
	}{
		{"latency", Manifest{Latency: map[string]LatencySLO{"single": {P99Us: 1}}}, 0, "single.intended_p99_us"},
		{"max latency", Manifest{Latency: map[string]LatencySLO{"single": {MaxUs: 1}}}, 0, "single.intended_max_us"},
		{"error rate", Manifest{MaxErrorRate: fptr(0.0001)}, 0, "error_rate"},
		{"feedback lost", Manifest{MaxFeedbackLost: iptr(0)}, 3, "feedback_lost"},
		{"min requests", Manifest{MinRequests: 1 << 40}, 0, "min_requests"},
		{"no samples", Manifest{Latency: map[string]LatencySLO{"batch": {P99Us: 1000}}}, 0, "batch.intended_samples"},
	}
	for _, tc := range cases {
		vs := tc.m.Evaluate(col, tc.lost)
		if len(vs) != 1 {
			t.Errorf("%s: got %d violations %v, want 1", tc.name, len(vs), vs)
			continue
		}
		if vs[0].Check != tc.check {
			t.Errorf("%s: violated %q, want %q", tc.name, vs[0].Check, tc.check)
		}
		if vs[0].String() == "" {
			t.Errorf("%s: empty violation string", tc.name)
		}
	}
}

// TestEvaluateDeterministicOrder: violations come out in a fixed order
// regardless of map iteration.
func TestEvaluateDeterministicOrder(t *testing.T) {
	col := evalCollector()
	m := Manifest{
		MinRequests:  1 << 40,
		MaxErrorRate: fptr(0.0001),
		Latency: map[string]LatencySLO{
			"single": {P99Us: 1},
			"batch":  {P99Us: 1},
			"bin":    {P99Us: 1},
		},
	}
	first := m.Evaluate(col, 0)
	for i := 0; i < 20; i++ {
		again := m.Evaluate(col, 0)
		if len(again) != len(first) {
			t.Fatalf("violation count flapped: %d vs %d", len(again), len(first))
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("violation order flapped at %d: %v vs %v", j, again[j], first[j])
			}
		}
	}
}
