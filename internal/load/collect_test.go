package load

import (
	"bytes"
	"sync"
	"testing"
)

// fillCollector records a fixed synthetic workload into c, spread across
// the given number of concurrently running goroutines. The observation
// set is identical regardless of goroutines — only the interleaving
// changes.
func fillCollector(c *Collector, goroutines int) {
	const n = 6000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += goroutines {
				cl := Class(i % int(NumClasses))
				cs := c.Class(cl)
				cs.Sent.Add(1)
				if i%500 == 0 {
					cs.Errors.Add(1)
					continue
				}
				v := float64(i%1000+1) * 1e-6
				cs.Intended.Observe(v * 2)
				cs.Actual.Observe(v)
			}
		}(g)
	}
	wg.Wait()
}

// TestReporterByteIdentity is the shared-reporter determinism gate: the
// same observations produce the same table and exposition bytes no matter
// how many goroutines recorded them (obs histograms and counters are
// order-independent, so a fixed seed renders identically at any worker
// count).
func TestReporterByteIdentity(t *testing.T) {
	var want []byte
	for _, goroutines := range []int{1, 4, 8} {
		c := NewCollector()
		fillCollector(c, goroutines)

		var table bytes.Buffer
		r := NewReporter(&table)
		r.ClassTable(c)
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
		var expo bytes.Buffer
		if err := c.Registry().WritePrometheus(&expo); err != nil {
			t.Fatal(err)
		}
		got := append(table.Bytes(), expo.Bytes()...)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("goroutines=%d: reporter output diverged:\n--- want ---\n%s\n--- got ---\n%s",
				goroutines, want, got)
		}
	}
}

func TestCollectorTotals(t *testing.T) {
	c := NewCollector()
	c.Class(ClassSingle).Sent.Add(10)
	c.Class(ClassSingle).Errors.Add(2)
	c.Class(ClassBin).Sent.Add(5)
	if got := c.TotalSent(); got != 15 {
		t.Fatalf("TotalSent = %d, want 15", got)
	}
	if got := c.TotalErrors(); got != 2 {
		t.Fatalf("TotalErrors = %d, want 2", got)
	}
}

func TestBenchAccumulator(t *testing.T) {
	b := NewBench("arm")
	if b.MeanNs() != 0 {
		t.Fatal("empty bench has a nonzero mean")
	}
	b.ObserveSeconds(1e-3)
	b.ObserveBatch(16e-3, 16) // 16 ops at 1ms each
	s := b.Hist.Snapshot()
	if s.Count != 17 {
		t.Fatalf("count = %d, want 17", s.Count)
	}
	mean := b.MeanNs()
	if mean < 0.8e6 || mean > 1.3e6 {
		t.Fatalf("mean = %v ns, want ~1e6", mean)
	}
	var buf bytes.Buffer
	r := NewReporter(&buf)
	r.LatencyHeader()
	b.Row(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no table output")
	}
}
