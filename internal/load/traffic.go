package load

import (
	"bytes"
	"fmt"
	"math"
	"strconv"

	"repro/internal/geom"
	"repro/internal/hist"
	"repro/internal/modelio"
	"repro/internal/rng"
	"repro/internal/wirebin"
)

// Per-class payload sizes. They are constants, not knobs: the mix weights
// control how much of each class the schedule carries, and keeping the
// per-event shape fixed keeps one event's cost comparable across runs.
const (
	// Dim is the dimensionality of every generated query (and of the
	// synthetic serving models).
	Dim = 2
	// BatchQueries is the query count of one ClassBatch request.
	BatchQueries = 16
	// StreamQueries is the query count of one ClassStream request.
	StreamQueries = 64
	// FeedbackObs is the observation count of one ClassFeedback upload.
	FeedbackObs = 8
	// SwapBuckets is the bucket count of hot-swap model envelopes — small
	// enough that building and indexing one is microseconds of server
	// work, large enough to exercise the publish path for real.
	SwapBuckets = 256
)

// GridModel builds a k×k grid histogram (m = k² buckets, m a perfect
// square) over the unit box with deterministic simplex weights. Seed 0
// reproduces the exact weight pattern cmd/selbench's -estpath mode has
// always used; a nonzero seed perturbs the weights multiplicatively, so
// hot-swapped models are genuinely different without changing shape.
func GridModel(m int, seed uint64) *hist.Model {
	k := int(math.Round(math.Sqrt(float64(m))))
	if k*k != m {
		panic("load: GridModel needs a perfect-square bucket count")
	}
	var r *rng.RNG
	if seed != 0 {
		r = rng.New(seed)
	}
	buckets := make([]geom.Box, 0, m)
	weights := make([]float64, 0, m)
	total := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			buckets = append(buckets, geom.NewBox(
				geom.Point{float64(i) / float64(k), float64(j) / float64(k)},
				geom.Point{float64(i+1) / float64(k), float64(j+1) / float64(k)},
			))
			w := float64((i*31+j*17)%97 + 1)
			if r != nil {
				w *= 1 + 0.5*r.Float64()
			}
			weights = append(weights, w)
			total += w
		}
	}
	for i := range weights {
		weights[i] /= total
	}
	return &hist.Model{Buckets: buckets, Weights: weights}
}

// boxQueries draws n random 2-D box queries from r: centers uniform in
// the unit square, sides in [0.02, 0.32) — the workload-query shape the
// estimate-path benchmarks have used since DESIGN.md §10.
func boxQueries(r *rng.RNG, n int) []geom.Range {
	qs := make([]geom.Range, n)
	for i := range qs {
		c := geom.Point{r.Float64(), r.Float64()}
		qs[i] = geom.BoxFromCenter(c, []float64{0.02 + 0.3*r.Float64(), 0.02 + 0.3*r.Float64()})
	}
	return qs
}

// GridQueries returns n seeded box queries (the selbench benchmark
// workload: GridQueries(7, n) reproduces its historical query stream).
func GridQueries(seed uint64, n int) []geom.Range {
	return boxQueries(rng.New(seed), n)
}

// eventQueryCount is the number of queries one event of the class sends.
func eventQueryCount(c Class) int {
	switch c {
	case ClassBatch:
		return BatchQueries
	case ClassStream:
		return StreamQueries
	case ClassSingle, ClassBin:
		return 1
	default:
		return 0
	}
}

// EventQueries derives the event's query set from its seed. Pure: the
// same event always yields the same queries, on any worker.
func EventQueries(ev Event) []geom.Range {
	return boxQueries(rng.New(ev.Seed), eventQueryCount(ev.Class))
}

// EventFeedback derives a ClassFeedback event's labeled observations:
// seeded queries with seeded selectivity labels in [0,1).
func EventFeedback(ev Event) (ranges []geom.Range, sels []float64) {
	r := rng.New(ev.Seed)
	ranges = boxQueries(r, FeedbackObs)
	sels = make([]float64, len(ranges))
	for i := range sels {
		sels[i] = r.Float64()
	}
	return ranges, sels
}

// SwapModel builds the event's hot-swap candidate: the standard grid with
// seed-perturbed weights, so every swap publishes a model the server has
// never seen.
func SwapModel(ev Event) *hist.Model {
	// Seed 0 would mean "no perturbation"; shift into a derived stream so
	// every event perturbs.
	return GridModel(SwapBuckets, ev.Seed|1)
}

// ---- wire bodies ----------------------------------------------------------

// AppendFloats appends a JSON array of floats in shortest-round-trip form
// (the same bytes encoding/json would produce).
func AppendFloats(dst []byte, p []float64) []byte {
	dst = append(dst, '[')
	for i, v := range p {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	}
	return append(dst, ']')
}

// appendBoxJSON appends `{"lo":[...],"hi":[...]}` for a box query.
func appendBoxJSON(dst []byte, q geom.Range) []byte {
	box := q.(geom.Box)
	dst = append(dst, `{"lo":`...)
	dst = AppendFloats(dst, box.Lo)
	dst = append(dst, `,"hi":`...)
	dst = AppendFloats(dst, box.Hi)
	return append(dst, '}')
}

// appendModelField appends `"model":"name",` when name is nonempty (the
// server defaults the empty name).
func appendModelField(dst []byte, model string) []byte {
	if model == "" {
		return dst
	}
	dst = append(dst, `"model":`...)
	dst = strconv.AppendQuote(dst, model)
	return append(dst, ',')
}

// SingleBody renders a one-query /v1/estimate request.
func SingleBody(model string, q geom.Range) []byte {
	dst := append([]byte(nil), '{')
	dst = appendModelField(dst, model)
	dst = append(dst, `"query":`...)
	dst = appendBoxJSON(dst, q)
	return append(dst, '}')
}

// BatchBody renders a batched /v1/estimate request.
func BatchBody(model string, qs []geom.Range) []byte {
	dst := append([]byte(nil), '{')
	dst = appendModelField(dst, model)
	dst = append(dst, `"queries":[`...)
	for i, q := range qs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendBoxJSON(dst, q)
	}
	return append(dst, `]}`...)
}

// StreamBody renders queries as NDJSON for /v1/estimate/stream (the model
// is chosen per connection via ?model=, not in the body).
func StreamBody(qs []geom.Range) []byte {
	var dst []byte
	for _, q := range qs {
		dst = appendBoxJSON(dst, q)
		dst = append(dst, '\n')
	}
	return dst
}

// FeedbackBody renders a /v1/feedback upload; sels[i] labels qs[i].
func FeedbackBody(model string, qs []geom.Range, sels []float64) []byte {
	dst := append([]byte(nil), '{')
	dst = appendModelField(dst, model)
	dst = append(dst, `"observations":[`...)
	for i, q := range qs {
		if i > 0 {
			dst = append(dst, ',')
		}
		box := q.(geom.Box)
		dst = append(dst, `{"lo":`...)
		dst = AppendFloats(dst, box.Lo)
		dst = append(dst, `,"hi":`...)
		dst = AppendFloats(dst, box.Hi)
		dst = append(dst, `,"sel":`...)
		dst = strconv.AppendFloat(dst, sels[i], 'g', -1, 64)
		dst = append(dst, '}')
	}
	return append(dst, `]}`...)
}

// SwapBody renders the event's hot-swap model envelope (the PUT body).
func SwapBody(ev Event) ([]byte, error) {
	var buf bytes.Buffer
	if err := modelio.Save(&buf, SwapModel(ev)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EventPayload returns the canonical request bytes an event sends: the
// HTTP body for JSON classes, the wire frame for the binary class, the
// model envelope for hot-swaps. Pure per event — the determinism tests
// diff these bytes across worker counts.
func EventPayload(ev Event, model string) ([]byte, error) {
	switch ev.Class {
	case ClassSingle:
		return SingleBody(model, EventQueries(ev)[0]), nil
	case ClassBatch:
		return BatchBody(model, EventQueries(ev)), nil
	case ClassStream:
		return StreamBody(EventQueries(ev)), nil
	case ClassBin:
		var name []byte
		if model != "" {
			name = []byte(model)
		}
		return wirebin.AppendEstimateReq(nil, name, EventQueries(ev)[0])
	case ClassFeedback:
		qs, sels := EventFeedback(ev)
		return FeedbackBody(model, qs, sels), nil
	case ClassSwap:
		return SwapBody(ev)
	}
	return nil, fmt.Errorf("load: event %d has unknown class %d", ev.Index, ev.Class)
}
