package load

import (
	"fmt"
	"io"

	"repro/internal/obs"
)

// LoadLatencyBuckets is the client-side latency layout: 1µs to 100s at
// nine buckets per decade (~29% bucket width). Finer than the server's
// obs.LatencyBuckets because the harness reports p999 — at four buckets
// per decade a p999 estimate can be off by a third, which is the
// difference between passing and failing a 1ms SLO.
var LoadLatencyBuckets = obs.ExpBuckets(1e-6, 1e2, 9)

// ClassStats holds one traffic class's metric handles. Two histograms per
// class is the whole point of the harness:
//
//   - Intended: completion − scheduled start. Includes every microsecond a
//     request spent waiting behind a backlog, so coordinated omission
//     cannot hide a stall. This is the distribution SLOs are judged on.
//   - Actual: completion − send. The service-time view; diverging from
//     Intended means the client could not keep up with its own schedule
//     (saturation, either side).
type ClassStats struct {
	Sent     *obs.Counter
	Errors   *obs.Counter
	Intended *obs.Histogram // seconds since intended (scheduled) start
	Actual   *obs.Histogram // seconds since actual send
}

// Collector owns the per-class client metrics of one run, backed by an
// obs.Registry so the same numbers can render as a table, a JSON report,
// or a Prometheus page.
type Collector struct {
	reg     *obs.Registry
	classes [NumClasses]ClassStats
}

// NewCollector registers the per-class series in a fresh registry.
func NewCollector() *Collector {
	c := &Collector{reg: obs.NewRegistry()}
	for i := Class(0); i < NumClasses; i++ {
		cl := obs.Label{Key: "class", Value: i.String()}
		c.classes[i] = ClassStats{
			Sent: c.reg.Counter("selload_requests_total",
				"Load-harness requests sent, by traffic class.", cl),
			Errors: c.reg.Counter("selload_errors_total",
				"Load-harness requests that failed, by traffic class.", cl),
			Intended: c.reg.Histogram("selload_intended_latency_seconds",
				"Completion minus intended (scheduled) start, by traffic class.",
				LoadLatencyBuckets, cl),
			Actual: c.reg.Histogram("selload_actual_latency_seconds",
				"Completion minus actual send, by traffic class.",
				LoadLatencyBuckets, cl),
		}
	}
	return c
}

// Class returns the handles for one traffic class.
func (c *Collector) Class(cl Class) *ClassStats { return &c.classes[cl] }

// Registry exposes the backing registry (tests render it as exposition).
func (c *Collector) Registry() *obs.Registry { return c.reg }

// TotalSent and TotalErrors sum across classes.
func (c *Collector) TotalSent() int64 {
	var n int64
	for i := range c.classes {
		n += c.classes[i].Sent.Value()
	}
	return n
}

func (c *Collector) TotalErrors() int64 {
	var n int64
	for i := range c.classes {
		n += c.classes[i].Errors.Value()
	}
	return n
}

// LatencySummary is the quantile digest of one histogram, in
// microseconds (the regime serving latencies live in).
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// Summarize digests a histogram snapshot.
func Summarize(s obs.HistogramSnapshot) LatencySummary {
	const toUs = 1e6
	if s.Count == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		Count:  s.Count,
		MeanUs: s.Mean() * toUs,
		P50Us:  s.Quantile(0.50) * toUs,
		P99Us:  s.Quantile(0.99) * toUs,
		P999Us: s.Quantile(0.999) * toUs,
		MaxUs:  s.Max * toUs,
	}
}

// ---- shared text reporter -------------------------------------------------

// Reporter renders latency and throughput tables in one fixed format,
// shared by cmd/selbench's -estpath/-stream/-bin modes and cmd/selload.
// Given the same histogram contents it always produces the same bytes
// (histograms are order-independent, so concurrent fills at any worker
// count render identically — test-gated), which is what makes two runs'
// tables diffable.
type Reporter struct {
	w   io.Writer
	err error
}

// NewReporter writes tables to w.
func NewReporter(w io.Writer) *Reporter { return &Reporter{w: w} }

func (r *Reporter) printf(format string, args ...any) {
	if r.err != nil {
		return
	}
	_, r.err = fmt.Fprintf(r.w, format, args...)
}

// Err returns the first write error.
func (r *Reporter) Err() error { return r.err }

// Titlef prints a table title line.
func (r *Reporter) Titlef(format string, args ...any) {
	r.printf(format+"\n", args...)
}

// ThroughputHeader starts a name / ns-per-op / ops-per-sec table (the
// format selbench's wire benchmarks have always printed), e.g.
// ThroughputHeader("ns/query", "queries/sec").
func (r *Reporter) ThroughputHeader(perOp, perSec string) {
	r.printf("%10s %12s %14s\n", "path", perOp, perSec)
}

// ThroughputRow prints one throughput row from a mean ns/op.
func (r *Reporter) ThroughputRow(name string, nsPerOp float64) {
	r.printf("%10s %12.0f %14.0f\n", name, nsPerOp, 1e9/nsPerOp)
}

// Rowf prints one arbitrary formatted row (comparison tables with
// bespoke columns, like the estimate-path kernel table).
func (r *Reporter) Rowf(format string, args ...any) {
	r.printf(format+"\n", args...)
}

// LatencyHeader starts a per-arm latency table (microsecond quantiles).
func (r *Reporter) LatencyHeader() {
	r.printf("%10s %10s %8s %10s %10s %10s %10s %12s\n",
		"arm", "ops", "errors", "mean_us", "p50_us", "p99_us", "p999_us", "max_us")
}

// LatencyRow prints one arm's digest.
func (r *Reporter) LatencyRow(name string, errors int64, s LatencySummary) {
	r.printf("%10s %10d %8d %10.1f %10.1f %10.1f %10.1f %12.1f\n",
		name, s.Count, errors, s.MeanUs, s.P50Us, s.P99Us, s.P999Us, s.MaxUs)
}

// ClassTable prints the collector's per-class intended/actual digests:
// one row per populated (class, view) pair, classes in enum order.
func (r *Reporter) ClassTable(c *Collector) {
	r.printf("%10s %9s %10s %8s %10s %10s %10s %10s %12s\n",
		"class", "view", "ops", "errors", "mean_us", "p50_us", "p99_us", "p999_us", "max_us")
	for i := Class(0); i < NumClasses; i++ {
		cs := c.Class(i)
		if cs.Sent.Value() == 0 {
			continue
		}
		for _, view := range []struct {
			name string
			h    *obs.Histogram
		}{{"intended", cs.Intended}, {"actual", cs.Actual}} {
			s := Summarize(view.h.Snapshot())
			r.printf("%10s %9s %10d %8d %10.1f %10.1f %10.1f %10.1f %12.1f\n",
				i.String(), view.name, cs.Sent.Value(), cs.Errors.Value(),
				s.MeanUs, s.P50Us, s.P99Us, s.P999Us, s.MaxUs)
		}
	}
}

// ---- per-arm bench accumulator --------------------------------------------

// Bench accumulates per-operation latencies for one benchmark arm.
// selbench's three wire modes each used to hand-roll elapsed/N
// accounting; they now share this: every arm is an obs.Histogram, so the
// printed mean is exact (integer-tick sum) and percentiles come for free.
type Bench struct {
	Name string
	Hist *obs.Histogram
	errs int64
}

// NewBench returns an arm accumulator.
func NewBench(name string) *Bench {
	return &Bench{Name: name, Hist: obs.NewHistogram(LoadLatencyBuckets)}
}

// ObserveSeconds records one operation's latency.
func (b *Bench) ObserveSeconds(sec float64) { b.Hist.Observe(sec) }

// ObserveBatch spreads a batch's wall time evenly over its n operations —
// the honest way to fold a one-round-trip batch into a per-op histogram
// (individual op latencies inside the batch are unobservable).
func (b *Bench) ObserveBatch(sec float64, n int) {
	if n <= 0 {
		return
	}
	per := sec / float64(n)
	for i := 0; i < n; i++ {
		b.Hist.Observe(per)
	}
}

// Error counts one failed operation.
func (b *Bench) Error() { b.errs++ }

// Row prints the arm into a latency table.
func (b *Bench) Row(r *Reporter) {
	r.LatencyRow(b.Name, b.errs, Summarize(b.Hist.Snapshot()))
}

// MeanNs returns the arm's mean ns/op (0 before any observation).
func (b *Bench) MeanNs() float64 {
	s := b.Hist.Snapshot()
	if s.Count == 0 {
		return 0
	}
	return s.Mean() * 1e9
}
