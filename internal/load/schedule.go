// Package load is the open-loop load-generation harness behind
// cmd/selload and the latency-reporting layer shared with cmd/selbench.
//
// The central design decision is the OPEN loop: request start times come
// from a precomputed arrival schedule (exponential or uniform
// inter-arrival gaps at a target rate), not from the completion of the
// previous request. A closed-loop client that waits for each response
// before sending the next one silently stretches its own schedule
// whenever the server stalls — the classic coordinated-omission trap,
// where a one-second server pause costs one slow sample instead of a
// thousand. Here every event keeps its intended start time; if the server
// (or the client worker) falls behind, the next requests fire immediately
// and their INTENDED-start latency (completion − scheduled start) absorbs
// the backlog, which is exactly the latency a real user arriving at that
// moment would have seen. The ACTUAL-start latency (completion − send)
// is recorded alongside as the server-service-time view; a growing gap
// between the two distributions is the signature of saturation.
//
// The schedule is a pure function of a ScheduleSpec: gaps come from an
// internal/rng stream and per-event content seeds from
// parallel.DeriveSeed, so the same seed reproduces the same schedule —
// arrival times, traffic classes, and request payloads — byte for byte,
// at any worker count (workers partition the one schedule round-robin;
// they never generate their own). That determinism is what makes a
// BENCH artifact from one run comparable to the next.
package load

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// Class is one traffic class of the mixed workload.
type Class uint8

const (
	// ClassSingle is a single-query POST /v1/estimate.
	ClassSingle Class = iota
	// ClassBatch is a batched POST /v1/estimate (BatchQueries queries).
	ClassBatch
	// ClassStream is a POST /v1/estimate/stream NDJSON request
	// (StreamQueries queries on one connection).
	ClassStream
	// ClassBin is a single estimate frame on the binary protocol.
	ClassBin
	// ClassFeedback is a POST /v1/feedback upload (FeedbackObs
	// observations).
	ClassFeedback
	// ClassSwap is a PUT /v1/models/{name} hot-swap of a freshly built
	// (seed-perturbed) model envelope.
	ClassSwap

	// NumClasses bounds the class enum; it is not itself a class.
	NumClasses
)

var classNames = [NumClasses]string{"single", "batch", "stream", "bin", "feedback", "swap"}

func (c Class) String() string {
	if c < NumClasses {
		return classNames[c]
	}
	return "class(" + strconv.Itoa(int(c)) + ")"
}

// ParseClass inverts Class.String.
func ParseClass(s string) (Class, error) {
	for i, n := range classNames {
		if n == s {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("load: unknown traffic class %q (want one of %s)", s, strings.Join(classNames[:], ", "))
}

// Mix holds the relative weight of each traffic class. Weights need not
// sum to 1; only ratios matter. The zero Mix is invalid — use DefaultMix
// or ParseMix.
type Mix [NumClasses]float64

// DefaultMix is estimate-dominated traffic with a trickle of feedback and
// rare hot-swaps, the shape ROADMAP item 4 describes.
func DefaultMix() Mix {
	var m Mix
	m[ClassSingle] = 6
	m[ClassBatch] = 1
	m[ClassStream] = 0.5
	m[ClassBin] = 1.5
	m[ClassFeedback] = 1
	m[ClassSwap] = 0.02
	return m
}

// ParseMix parses "single=6,batch=1,swap=0.02"; omitted classes get
// weight 0. At least one weight must be positive.
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("load: malformed mix term %q (want class=weight)", part)
		}
		cl, err := ParseClass(strings.TrimSpace(k))
		if err != nil {
			return m, err
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil || math.IsNaN(w) || w < 0 {
			return m, fmt.Errorf("load: bad weight for class %q: %q", k, v)
		}
		m[cl] = w
	}
	return m, m.validate()
}

func (m Mix) validate() error {
	total := 0.0
	for _, w := range m {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("load: mix weights must be finite and non-negative")
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("load: mix needs at least one positive weight")
	}
	return nil
}

// MixFromMap builds a Mix from a class-name→weight map (the SLO manifest
// form). An empty map yields DefaultMix.
func MixFromMap(weights map[string]float64) (Mix, error) {
	if len(weights) == 0 {
		return DefaultMix(), nil
	}
	var m Mix
	// Sorted iteration: the floats land in m by class index either way,
	// but error reporting must not depend on map order.
	names := make([]string, 0, len(weights))
	for k := range weights {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		cl, err := ParseClass(k)
		if err != nil {
			return m, err
		}
		w := weights[k]
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return m, fmt.Errorf("load: bad weight %v for class %q", w, k)
		}
		m[cl] = w
	}
	return m, m.validate()
}

// Map renders the mix as a class-name→weight map (positive weights only),
// for the JSON report.
func (m Mix) Map() map[string]float64 {
	out := make(map[string]float64)
	for cl, w := range m {
		if w > 0 {
			out[Class(cl).String()] = w
		}
	}
	return out
}

// Arrival selects the inter-arrival process.
type Arrival uint8

const (
	// ArrivalExp draws exponential gaps (a Poisson arrival process, the
	// standard open-loop model: bursts happen).
	ArrivalExp Arrival = iota
	// ArrivalUniform draws gaps uniform on (0, 2/rate) — same mean rate,
	// bounded burstiness, useful for isolating queueing effects.
	ArrivalUniform
)

func (a Arrival) String() string {
	if a == ArrivalUniform {
		return "uniform"
	}
	return "exp"
}

// ParseArrival inverts Arrival.String ("" defaults to exp).
func ParseArrival(s string) (Arrival, error) {
	switch s {
	case "", "exp":
		return ArrivalExp, nil
	case "uniform":
		return ArrivalUniform, nil
	}
	return 0, fmt.Errorf("load: unknown arrival process %q (want exp or uniform)", s)
}

// ScheduleSpec parameterizes one open-loop run.
type ScheduleSpec struct {
	Seed     uint64        // base seed; every derived stream hangs off it
	Rate     float64       // mean arrivals per second, all classes combined
	Duration time.Duration // schedule horizon
	Arrival  Arrival
	Mix      Mix
}

// Event is one scheduled request: an intended start offset from the run
// epoch, a traffic class, and the seed its payload derives from.
type Event struct {
	Index int           // position in the global schedule
	At    time.Duration // intended start, relative to the run epoch
	Class Class
	Seed  uint64 // per-event content seed (parallel.DeriveSeed of the base)
}

// maxScheduleEvents bounds schedule memory: ~48 bytes/event keeps even
// this ceiling under a gigabyte, and any realistic SLO scenario is far
// smaller.
const maxScheduleEvents = 20_000_000

// Build materializes the schedule: event arrival offsets, classes, and
// content seeds. The result depends only on the spec — never on worker
// count, wall clock, or host — and the same spec always yields the same
// events (the determinism test diffs the bytes).
func (s ScheduleSpec) Build() ([]Event, error) {
	if !(s.Rate > 0) || math.IsInf(s.Rate, 0) {
		return nil, fmt.Errorf("load: schedule rate must be positive and finite, got %v", s.Rate)
	}
	if s.Duration <= 0 {
		return nil, fmt.Errorf("load: schedule duration must be positive, got %v", s.Duration)
	}
	if err := s.Mix.validate(); err != nil {
		return nil, err
	}
	if expect := s.Rate * s.Duration.Seconds(); expect > maxScheduleEvents {
		return nil, fmt.Errorf("load: schedule of ~%.0f events exceeds the %d-event ceiling", expect, maxScheduleEvents)
	}

	// Cumulative mix thresholds for the weighted class pick.
	var cum [NumClasses]float64
	total := 0.0
	for i, w := range s.Mix {
		total += w
		cum[i] = total
	}

	gaps := rng.New(parallel.DeriveSeed(s.Seed, 0x9a9))
	events := make([]Event, 0, int(s.Rate*s.Duration.Seconds())+16)
	at := time.Duration(0)
	for i := 0; ; i++ {
		// First arrival at one gap in, not at t=0: an empty prefix is part
		// of the arrival process too.
		u := gaps.Float64()
		var gapSec float64
		if s.Arrival == ArrivalUniform {
			gapSec = 2 * u / s.Rate
		} else {
			// Float64 is in [0,1); 1-u is in (0,1], so the log is finite.
			gapSec = -math.Log(1-u) / s.Rate
		}
		at += time.Duration(gapSec * float64(time.Second))
		if at >= s.Duration {
			break
		}
		seed := parallel.DeriveSeed(s.Seed, uint64(i))
		// The class pick uses its own derived stream so payload content
		// (which consumes Seed) stays independent of the mix.
		pick := float64(parallel.DeriveSeed(seed, 0xC1A55)>>11) / (1 << 53) * total
		class := Class(0)
		for class < NumClasses-1 && pick >= cum[class] {
			class++
		}
		events = append(events, Event{Index: i, At: at, Class: class, Seed: seed})
		if len(events) > maxScheduleEvents {
			return nil, fmt.Errorf("load: schedule exceeded the %d-event ceiling", maxScheduleEvents)
		}
	}
	return events, nil
}

// Partition deals the schedule round-robin across workers: worker w owns
// events[i] with i ≡ w (mod workers), in schedule order. Every partition
// of the same schedule covers exactly the same events with the same
// intended times — changing the worker count reassigns who SENDS an
// event, never what is sent or when it was due.
func Partition(events []Event, workers int) [][]Event {
	if workers < 1 {
		workers = 1
	}
	out := make([][]Event, workers)
	for w := range out {
		n := (len(events) - w + workers - 1) / workers
		out[w] = make([]Event, 0, n)
	}
	for i, ev := range events {
		out[i%workers] = append(out[i%workers], ev)
	}
	return out
}

// AppendEventBytes appends a canonical byte encoding of the event —
// schedule position, intended time, class, seed, and the exact request
// payload it would send — used by the determinism tests to diff schedules
// across worker counts and runs.
func AppendEventBytes(dst []byte, ev Event, modelName string) ([]byte, error) {
	dst = strconv.AppendInt(dst, int64(ev.Index), 10)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(ev.At), 10)
	dst = append(dst, '|')
	dst = append(dst, ev.Class.String()...)
	dst = append(dst, '|')
	dst = strconv.AppendUint(dst, ev.Seed, 16)
	dst = append(dst, '|')
	payload, err := EventPayload(ev, modelName)
	if err != nil {
		return dst, err
	}
	dst = append(dst, payload...)
	dst = append(dst, '\n')
	return dst, nil
}
