package load

import (
	"encoding/json"
	"io"
	"math"

	"repro/internal/obs"
)

// ClassReport is one traffic class's client-side measurements.
type ClassReport struct {
	Sent     int64          `json:"sent"`
	Errors   int64          `json:"errors"`
	Intended LatencySummary `json:"intended"`
	Actual   LatencySummary `json:"actual"`
}

// ServerReport is the server-side view of the run, computed generically
// from the before/after /metrics scrapes: every counter family's summed
// delta, every gauge series' closing value, and a per-series latency
// digest of every histogram family's interval delta. Nothing here is
// hand-picked — when the server grows a new histogram (say, a GC pause
// tracker), the next report carries it automatically. The online-update
// and HTTP-route histograms land next to the client tails, which is the
// correlation the harness exists for.
type ServerReport struct {
	CounterDeltas   map[string]float64                   `json:"counter_deltas,omitempty"`
	Gauges          map[string]float64                   `json:"gauges,omitempty"`
	HistogramDeltas map[string]map[string]LatencySummary `json:"histogram_deltas,omitempty"`
}

// SLOResult records the verdict of judging the run against a manifest.
type SLOResult struct {
	Name       string      `json:"name"`
	Pass       bool        `json:"pass"`
	Violations []Violation `json:"violations"`
}

// Report is the JSON artifact one selload run emits: the schedule
// parameters (enough to reproduce the run bit-for-bit), the client-side
// per-class intended/actual distributions, the server-side deltas, and
// the SLO verdict when a manifest was supplied.
type Report struct {
	Tool            string             `json:"tool"`
	Scenario        string             `json:"scenario,omitempty"`
	Seed            uint64             `json:"seed"`
	RateRPS         float64            `json:"rate_rps"`
	DurationSeconds float64            `json:"duration_seconds"`
	Arrival         string             `json:"arrival"`
	Mix             map[string]float64 `json:"mix"`
	Workers         int                `json:"workers"`
	Model           string             `json:"model,omitempty"`

	Events      int     `json:"events"`
	WallSeconds float64 `json:"wall_seconds"`
	AchievedRPS float64 `json:"achieved_rps"`

	Client map[string]ClassReport `json:"client"`
	Server *ServerReport          `json:"server,omitempty"`
	SLO    *SLOResult             `json:"slo,omitempty"`
}

// BuildReport assembles the artifact. before/after may be nil (no server
// scrape — e.g. the target exposes no /metrics); the server block is then
// omitted.
func BuildReport(opts Options, res *RunResult, before, after *obs.Scrape) *Report {
	r := &Report{
		Tool:            "selload",
		Seed:            opts.Spec.Seed,
		RateRPS:         opts.Spec.Rate,
		DurationSeconds: opts.Spec.Duration.Seconds(),
		Arrival:         opts.Spec.Arrival.String(),
		Mix:             opts.Spec.Mix.Map(),
		Workers:         opts.workers(),
		Model:           opts.Model,
		Events:          res.Events,
		WallSeconds:     res.Wall.Seconds(),
		Client:          make(map[string]ClassReport),
	}
	if res.Wall > 0 {
		r.AchievedRPS = float64(res.Events) / res.Wall.Seconds()
	}
	for i := Class(0); i < NumClasses; i++ {
		cs := res.Collector.Class(i)
		if cs.Sent.Value() == 0 {
			continue
		}
		r.Client[i.String()] = ClassReport{
			Sent:     cs.Sent.Value(),
			Errors:   cs.Errors.Value(),
			Intended: Summarize(cs.Intended.Snapshot()),
			Actual:   Summarize(cs.Actual.Snapshot()),
		}
	}
	if before != nil && after != nil {
		r.Server = NewServerReport(before, after)
	}
	return r
}

// Judge attaches the SLO verdict for a manifest to the report.
func (r *Report) Judge(m *Manifest, col *Collector, feedbackLost int64) *SLOResult {
	vs := m.Evaluate(col, feedbackLost)
	if vs == nil {
		vs = []Violation{} // render as [] not null
	}
	r.Scenario = m.Name
	r.SLO = &SLOResult{Name: m.Name, Pass: len(vs) == 0, Violations: vs}
	return r.SLO
}

// WriteJSON renders the artifact with stable key order (encoding/json
// sorts map keys), so two runs of the same seed diff cleanly.
func (r *Report) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// NewServerReport computes the generic before/after deltas described on
// ServerReport.
func NewServerReport(before, after *obs.Scrape) *ServerReport {
	sr := &ServerReport{
		CounterDeltas:   make(map[string]float64),
		Gauges:          make(map[string]float64),
		HistogramDeltas: make(map[string]map[string]LatencySummary),
	}
	for fi := range after.Families {
		f := &after.Families[fi]
		switch f.Type {
		case "counter":
			d := after.SumCounter(f.Name) - before.SumCounter(f.Name)
			if d > 0 || d < 0 {
				sr.CounterDeltas[f.Name] = d
			}
		case "gauge":
			for _, s := range f.Samples {
				sr.Gauges[f.Name+s.Labels] = s.Value
			}
		case "histogram":
			for _, labels := range after.HistogramSeries(f.Name) {
				a, ok := after.HistogramSnapshot(f.Name, labels)
				if !ok {
					continue
				}
				// A series absent from the before scrape deltas against the
				// zero snapshot (identity).
				b, _ := before.HistogramSnapshot(f.Name, labels)
				d := a.Delta(b)
				if d.Count == 0 {
					continue
				}
				if sr.HistogramDeltas[f.Name] == nil {
					sr.HistogramDeltas[f.Name] = make(map[string]LatencySummary)
				}
				key := labels
				if key == "" {
					key = "{}"
				}
				sr.HistogramDeltas[f.Name][key] = Summarize(d)
			}
		}
	}
	return sr
}

// FeedbackLostDelta extracts the run's feedback-loss delta from the
// scrape bookends (0 when either scrape is nil or lacks the counter).
func FeedbackLostDelta(before, after *obs.Scrape) int64 {
	if before == nil || after == nil {
		return 0
	}
	return int64(math.Round(after.SumCounter(FeedbackLostMetric) - before.SumCounter(FeedbackLostMetric)))
}
