package load

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wirebin"
)

// Options configures one open-loop run against a live selserve.
type Options struct {
	// BaseURL is the HTTP endpoint root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// BinAddr is the binary-protocol listener ("host:port"). Required when
	// the mix gives ClassBin positive weight.
	BinAddr string
	// Model is the target model name; "" uses the server default. Hot-swap
	// events PUT to this name (or the server default when empty).
	Model string
	// Workers is the number of concurrent senders; each holds one
	// persistent HTTP connection (and one binary connection if the mix
	// needs it). The schedule is independent of this knob — workers only
	// partition it.
	Workers int
	// Timeout bounds each request (0 means no timeout).
	Timeout time.Duration
	// Spec is the open-loop schedule to drive.
	Spec ScheduleSpec
}

func (o *Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

func (o *Options) validate() error {
	if o.BaseURL == "" {
		return fmt.Errorf("load: Options.BaseURL is required")
	}
	if o.BinAddr == "" && o.Spec.Mix[ClassBin] > 0 {
		return fmt.Errorf("load: mix gives class %q weight %v but Options.BinAddr is empty",
			ClassBin, o.Spec.Mix[ClassBin])
	}
	return nil
}

// RunResult is what one open-loop run measured.
type RunResult struct {
	Collector *Collector
	Events    int           // scheduled (and attempted) events
	Wall      time.Duration // epoch to last completion
}

const (
	ctJSON   = "application/json"
	ctNDJSON = "application/x-ndjson"

	binDialTimeout = 10 * time.Second
)

// worker is one sender: a partition of the schedule, one persistent HTTP
// connection, and a lazily dialed binary connection.
type worker struct {
	opts  *Options
	col   *Collector
	httpc *http.Client

	estimateURL string
	streamURL   string
	feedbackURL string
	swapURL     string

	binConn net.Conn
	bin     *wirebin.Client
}

func newWorker(opts *Options, col *Collector) *worker {
	base := strings.TrimRight(opts.BaseURL, "/")
	stream := base + "/v1/estimate/stream"
	if opts.Model != "" {
		stream += "?model=" + url.QueryEscape(opts.Model)
	}
	swapName := opts.Model
	if swapName == "" {
		swapName = "default" // serve.DefaultModelName, not imported to keep load client-only
	}
	return &worker{
		opts: opts,
		col:  col,
		httpc: &http.Client{
			Timeout: opts.Timeout,
			Transport: &http.Transport{
				// One persistent connection per worker: the harness's
				// concurrency is exactly its worker count.
				MaxIdleConns:        1,
				MaxIdleConnsPerHost: 1,
				MaxConnsPerHost:     1,
				DisableCompression:  true,
			},
		},
		estimateURL: base + "/v1/estimate",
		streamURL:   stream,
		feedbackURL: base + "/v1/feedback",
		swapURL:     base + "/v1/models/" + url.PathEscape(swapName),
	}
}

// do round-trips one HTTP request, draining the body so the connection is
// reusable. Any non-2xx status is an error.
func (w *worker) do(method, u string, body []byte, contentType string) error {
	req, err := http.NewRequest(method, u, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := w.httpc.Do(req)
	if err != nil {
		return err
	}
	_, cerr := io.Copy(io.Discard, resp.Body)
	if err := resp.Body.Close(); err != nil && cerr == nil {
		cerr = err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("load: %s %s: status %d", method, u, resp.StatusCode)
	}
	return cerr
}

// sendBin round-trips one binary-protocol estimate, dialing lazily and
// discarding the connection on any error (the next bin event redials).
func (w *worker) sendBin(ev Event) error {
	if w.bin == nil {
		conn, err := net.DialTimeout("tcp", w.opts.BinAddr, binDialTimeout)
		if err != nil {
			return err
		}
		w.binConn, w.bin = conn, wirebin.NewClient(conn)
	}
	if w.opts.Timeout > 0 {
		if err := w.binConn.SetDeadline(deadlineIn(w.opts.Timeout)); err != nil {
			return err
		}
	}
	if _, _, err := w.bin.Estimate(w.opts.Model, EventQueries(ev)[0]); err != nil {
		// A failed round trip leaves the stream position unknown; drop the
		// connection rather than desynchronize.
		w.closeBin()
		return err
	}
	return nil
}

func (w *worker) closeBin() {
	if w.binConn != nil {
		// Best-effort teardown of an already-failed connection.
		_ = w.binConn.Close()
	}
	w.binConn, w.bin = nil, nil
}

// send fires one event's request. The bytes on the wire are exactly what
// EventPayload renders for the event (the determinism tests diff those).
func (w *worker) send(ev Event) error {
	switch ev.Class {
	case ClassSingle:
		return w.do(http.MethodPost, w.estimateURL, SingleBody(w.opts.Model, EventQueries(ev)[0]), ctJSON)
	case ClassBatch:
		return w.do(http.MethodPost, w.estimateURL, BatchBody(w.opts.Model, EventQueries(ev)), ctJSON)
	case ClassStream:
		return w.do(http.MethodPost, w.streamURL, StreamBody(EventQueries(ev)), ctNDJSON)
	case ClassBin:
		return w.sendBin(ev)
	case ClassFeedback:
		qs, sels := EventFeedback(ev)
		return w.do(http.MethodPost, w.feedbackURL, FeedbackBody(w.opts.Model, qs, sels), ctJSON)
	case ClassSwap:
		body, err := SwapBody(ev)
		if err != nil {
			return err
		}
		return w.do(http.MethodPut, w.swapURL, body, ctJSON)
	}
	return fmt.Errorf("load: event %d has unknown class %d", ev.Index, ev.Class)
}

// run drives one worker's partition on the shared epoch: sleep until each
// event's intended start, send, observe. When the worker is behind
// schedule the sleep is a no-op and events fire back-to-back — the
// backlog lands in the intended-start histogram instead of stretching the
// schedule (the open-loop contract).
func (w *worker) run(epoch time.Time, events []Event) {
	defer w.closeBin()
	for _, ev := range events {
		sleepFor(ev.At - monotonicSince(epoch))
		cs := w.col.Class(ev.Class)
		cs.Sent.Add(1)
		sendMark := monotonicNow()
		if err := w.send(ev); err != nil {
			cs.Errors.Add(1)
			continue
		}
		done := monotonicSince(epoch)
		cs.Actual.Observe(monotonicSince(sendMark).Seconds())
		cs.Intended.Observe((done - ev.At).Seconds())
	}
}

// Run executes the open-loop schedule against the target server and
// returns the client-side measurements. It builds the one global
// schedule, partitions it round-robin across workers, and anchors every
// worker on the same epoch.
func Run(opts Options) (*RunResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	events, err := opts.Spec.Build()
	if err != nil {
		return nil, err
	}
	col := NewCollector()
	parts := Partition(events, opts.workers())

	var wg sync.WaitGroup
	epoch := monotonicNow()
	for _, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(evs []Event) {
			defer wg.Done()
			newWorker(&opts, col).run(epoch, evs)
		}(part)
	}
	wg.Wait()
	return &RunResult{Collector: col, Events: len(events), Wall: monotonicSince(epoch)}, nil
}

// ScrapeMetrics fetches and parses a server's Prometheus page — the
// before/after server-side bookends of a run.
func ScrapeMetrics(baseURL string, timeout time.Duration) (*obs.Scrape, error) {
	c := &http.Client{Timeout: timeout}
	resp, err := c.Get(strings.TrimRight(baseURL, "/") + "/metrics")
	if err != nil {
		return nil, err
	}
	defer func() {
		// The parser consumes the body; a close error has nothing to add.
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: GET /metrics: status %d", resp.StatusCode)
	}
	return obs.ParseScrape(resp.Body)
}
