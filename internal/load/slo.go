package load

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// FeedbackLostMetric is the server counter the feedback-loss SLO reads:
// observations overwritten in the feedback ring before any retrain
// snapshot saw them. "Lost" is stronger than "dropped" — dropped
// observations were at least superseded by fresher ones the trainer read.
const FeedbackLostMetric = "selserve_feedback_lost_total"

// LatencySLO bounds one traffic class's intended-start latency quantiles,
// in microseconds. Zero fields are unchecked. Thresholds are judged on
// the INTENDED-start distribution — the coordinated-omission-safe number;
// an SLO on actual-start latency would go blind exactly when the system
// saturates.
type LatencySLO struct {
	P50Us  float64 `json:"p50_us,omitempty"`
	P99Us  float64 `json:"p99_us,omitempty"`
	P999Us float64 `json:"p999_us,omitempty"`
	MaxUs  float64 `json:"max_us,omitempty"`
}

// Manifest is the declarative SLO a run is judged against, e.g.:
//
//	{
//	  "name": "estimate-p99-smoke",
//	  "min_requests": 50,
//	  "max_error_rate": 0.001,
//	  "max_feedback_lost": 0,
//	  "latency": {"single": {"p99_us": 1000}, "bin": {"p99_us": 500}}
//	}
//
// Pointer fields distinguish "unchecked" from an explicit zero bound
// (max_feedback_lost: 0 means feedback loss is forbidden, the common
// case).
type Manifest struct {
	Name string `json:"name"`
	// MinRequests guards against vacuous passes: a run that sent fewer
	// total requests than this violates (an SLO met by not testing is not
	// met).
	MinRequests int64 `json:"min_requests,omitempty"`
	// MaxErrorRate bounds failed/sent across all classes.
	MaxErrorRate *float64 `json:"max_error_rate,omitempty"`
	// MaxFeedbackLost bounds the run's delta of FeedbackLostMetric.
	MaxFeedbackLost *int64 `json:"max_feedback_lost,omitempty"`
	// Latency maps traffic-class name → intended-latency bounds.
	Latency map[string]LatencySLO `json:"latency,omitempty"`
}

// ParseManifest decodes and validates a manifest. Unknown fields are
// rejected: a typoed threshold must fail loudly, not silently uncheck.
func ParseManifest(r io.Reader) (*Manifest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("load: bad SLO manifest: %w", err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

func (m *Manifest) validate() error {
	if m.MinRequests < 0 {
		return fmt.Errorf("load: SLO min_requests must be non-negative")
	}
	if m.MaxErrorRate != nil && (*m.MaxErrorRate < 0 || *m.MaxErrorRate > 1) {
		return fmt.Errorf("load: SLO max_error_rate must be in [0,1]")
	}
	if m.MaxFeedbackLost != nil && *m.MaxFeedbackLost < 0 {
		return fmt.Errorf("load: SLO max_feedback_lost must be non-negative")
	}
	for _, name := range sortedKeys(m.Latency) {
		if _, err := ParseClass(name); err != nil {
			return fmt.Errorf("load: SLO latency block: %w", err)
		}
		slo := m.Latency[name]
		for _, v := range []float64{slo.P50Us, slo.P99Us, slo.P999Us, slo.MaxUs} {
			if v < 0 {
				return fmt.Errorf("load: SLO latency bounds for %q must be non-negative", name)
			}
		}
	}
	return nil
}

func sortedKeys(m map[string]LatencySLO) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Violation is one broken SLO clause.
type Violation struct {
	Check  string  `json:"check"`  // e.g. "single.intended_p99_us"
	Limit  float64 `json:"limit"`  // the manifest bound
	Actual float64 `json:"actual"` // what the run measured
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: measured %g, limit %g", v.Check, v.Actual, v.Limit)
}

// Evaluate judges a run's client measurements (plus the server-side
// feedback-lost delta) against the manifest and returns every violation,
// in a deterministic order. An empty slice means the SLO holds.
func (m *Manifest) Evaluate(col *Collector, feedbackLost int64) []Violation {
	var out []Violation
	sent, errs := col.TotalSent(), col.TotalErrors()

	if m.MinRequests > 0 && sent < m.MinRequests {
		out = append(out, Violation{Check: "min_requests", Limit: float64(m.MinRequests), Actual: float64(sent)})
	}
	if m.MaxErrorRate != nil {
		rate := 0.0
		if sent > 0 {
			rate = float64(errs) / float64(sent)
		}
		if rate > *m.MaxErrorRate {
			out = append(out, Violation{Check: "error_rate", Limit: *m.MaxErrorRate, Actual: rate})
		}
	}
	if m.MaxFeedbackLost != nil && feedbackLost > *m.MaxFeedbackLost {
		out = append(out, Violation{Check: "feedback_lost", Limit: float64(*m.MaxFeedbackLost), Actual: float64(feedbackLost)})
	}

	for _, name := range sortedKeys(m.Latency) {
		cl, err := ParseClass(name)
		if err != nil {
			// validate() rejected this at parse time; an unchecked manifest
			// built by hand still fails closed.
			out = append(out, Violation{Check: name + ".unknown_class", Limit: 0, Actual: 1})
			continue
		}
		slo := m.Latency[name]
		s := Summarize(col.Class(cl).Intended.Snapshot())
		if s.Count == 0 {
			// A latency bound on a class that never completed a request is a
			// violation, not a pass: there is nothing to certify.
			out = append(out, Violation{Check: name + ".intended_samples", Limit: 1, Actual: 0})
			continue
		}
		for _, c := range []struct {
			suffix string
			limit  float64
			actual float64
		}{
			{"intended_p50_us", slo.P50Us, s.P50Us},
			{"intended_p99_us", slo.P99Us, s.P99Us},
			{"intended_p999_us", slo.P999Us, s.P999Us},
			{"intended_max_us", slo.MaxUs, s.MaxUs},
		} {
			if c.limit > 0 && c.actual > c.limit {
				out = append(out, Violation{Check: name + "." + c.suffix, Limit: c.limit, Actual: c.actual})
			}
		}
	}
	return out
}
