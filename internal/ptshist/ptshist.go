// Package ptshist implements PTSHIST (Section 3.3 of the paper): a
// discrete-distribution model whose buckets are points in the data space —
// the paper's generic instantiation for high dimensions, where boxes become
// poor density representations and intersection volumes expensive.
//
// Bucket design draws 90% of the k points from the interiors of the
// training query ranges — each range receiving a share proportional to its
// selectivity — and the remaining 10% uniformly from the whole space so
// density can be allocated to regions no training query covers. Interior
// sampling uses rejection from the smallest bounding box (Appendix A.2).
// Weight estimation is the shared constrained least-squares program.
package ptshist

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/solver"
)

// DefaultInteriorFraction is the paper's 0.9/0.1 interior/uniform split.
const DefaultInteriorFraction = 0.9

// Options configures PTSHIST training.
type Options struct {
	// K is the model size (number of point buckets).
	K int
	// Seed drives the deterministic sampling of bucket positions.
	Seed uint64
	// InteriorFraction is the share of buckets drawn from query
	// interiors; the paper uses 0.9. Zero means the default.
	InteriorFraction float64
	// Solver picks the weight-estimation algorithm (auto by default).
	Solver solver.Method
	// LInfObjective switches training to the minimax loss (Section 4.6).
	LInfObjective bool
}

// Trainer builds PTSHIST models for a fixed dimensionality.
type Trainer struct {
	Dim  int
	Opts Options
	// Log, when non-nil, collects per-stage timings and solver iteration
	// counts (and mirrors the stages as trace spans); see obs.TrainLog.
	Log *obs.TrainLog
}

// New returns a PTSHIST trainer with model size k.
func New(dim, k int, seed uint64) *Trainer {
	return &Trainer{Dim: dim, Opts: Options{K: k, Seed: seed}}
}

// Name implements core.Trainer.
func (t *Trainer) Name() string { return "PtsHist" }

// Model is a trained PTSHIST discrete distribution.
type Model struct {
	Points  []geom.Point
	Weights []float64
}

// Train implements core.Trainer.
func (t *Trainer) Train(samples []core.LabeledQuery) (core.Model, error) {
	m, err := t.TrainHist(samples)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// TrainHist is Train with a concrete return type.
func (t *Trainer) TrainHist(samples []core.LabeledQuery) (*Model, error) {
	if len(samples) == 0 {
		return nil, errors.New("ptshist: empty training set")
	}
	if t.Opts.K <= 0 {
		return nil, errors.New("ptshist: model size K must be positive")
	}
	stage := t.Log.Stage("sample_points")
	pts := t.SamplePoints(samples)
	stage.EndItems(int64(len(pts)))

	stage = t.Log.Stage("design_matrix")
	a := core.DesignMatrixPoints(samples, pts)
	s := core.Selectivities(samples)
	stage.EndItems(int64(a.Rows) * int64(a.Cols))

	stage = t.Log.Stage("solve")
	var w []float64
	var err error
	var sst solver.Stats
	if t.Opts.LInfObjective {
		w, err = lp.MinimaxWeights(a, s)
		sst.Method = "lp_minimax"
	} else {
		w, err = solver.WeightsWithStats(t.Opts.Solver, a, s, &sst)
	}
	stage.EndItems(int64(sst.Iterations))
	if err != nil {
		return nil, fmt.Errorf("ptshist: weight estimation: %w", err)
	}
	t.Log.SetSolver(sst.Method, sst.Iterations)
	return &Model{Points: pts, Weights: w}, nil
}

// SamplePoints runs the bucket-design phase alone (exposed for the bucket
// ablation benchmark).
func (t *Trainer) SamplePoints(samples []core.LabeledQuery) []geom.Point {
	r := rng.New(t.Opts.Seed)
	k := t.Opts.K
	frac := t.Opts.InteriorFraction
	if frac == 0 {
		frac = DefaultInteriorFraction
	}
	interior := int(frac * float64(k))
	pts := make([]geom.Point, 0, k)

	// Proportional shares with largest-remainder rounding so interior
	// points total exactly `interior`.
	total := 0.0
	for _, z := range samples {
		total += z.Sel
	}
	if total > 0 && interior > 0 {
		counts := apportion(samples, interior, total)
		for i, z := range samples {
			smp, ok := z.R.(geom.Sampler)
			if !ok {
				continue
			}
			for c := 0; c < counts[i]; c++ {
				p, ok := smp.Sample(r)
				if !ok {
					break
				}
				pts = append(pts, p)
			}
		}
	}
	// Remaining points uniform over the whole space.
	for len(pts) < k {
		p := make(geom.Point, t.Dim)
		for i := range p {
			p[i] = r.Float64()
		}
		pts = append(pts, p)
	}
	return pts
}

// apportion distributes `interior` points over queries proportionally to
// selectivity, exactly, by largest remainder.
func apportion(samples []core.LabeledQuery, interior int, total float64) []int {
	n := len(samples)
	counts := make([]int, n)
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, n)
	used := 0
	for i, z := range samples {
		exact := z.Sel / total * float64(interior)
		counts[i] = int(exact)
		used += counts[i]
		rems[i] = rem{idx: i, frac: exact - float64(counts[i])}
	}
	// Hand out the leftover to the largest remainders (stable by index
	// for determinism).
	for used < interior {
		best := -1
		for i := range rems {
			if rems[i].frac > 0 && (best < 0 || rems[i].frac > rems[best].frac) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		counts[rems[best].idx]++
		rems[best].frac = 0
		used++
	}
	return counts
}

// NumBuckets implements core.Model.
func (m *Model) NumBuckets() int { return len(m.Points) }

// Estimate implements core.Model: Equation 7, Σⱼ 1(Bⱼ ∈ R)·wⱼ.
func (m *Model) Estimate(r geom.Range) float64 {
	s := 0.0
	for j, p := range m.Points {
		if m.Weights[j] != 0 && r.Contains(p) {
			s += m.Weights[j]
		}
	}
	return core.Clamp01(s)
}

var _ core.Trainer = (*Trainer)(nil)
var _ core.Model = (*Model)(nil)
