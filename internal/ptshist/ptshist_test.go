package ptshist

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/workload"
)

func gen2D(seed uint64) *workload.Generator {
	return workload.NewGenerator(dataset.Power(8000, 1).Project([]int{0, 1}), seed)
}

func TestTrainBasic2D(t *testing.T) {
	g := gen2D(42)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 150, 150)
	m, err := New(2, 600, 7).TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumBuckets() != 600 {
		t.Fatalf("bucket count %d, want 600", m.NumBuckets())
	}
	sum := 0.0
	for _, w := range m.Weights {
		if w < -1e-12 {
			t.Fatalf("negative weight %v", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("weights sum to %v", sum)
	}
	if rms := core.RMS(m, test); rms > 0.15 {
		t.Fatalf("test RMS = %v", rms)
	}
}

func TestPointsInUnitCube(t *testing.T) {
	g := gen2D(1)
	train := g.Generate(workload.Spec{Class: workload.Ball, Centers: workload.DataDriven}, 60)
	tr := New(2, 400, 3)
	pts := tr.SamplePoints(train)
	if len(pts) != 400 {
		t.Fatalf("sampled %d points", len(pts))
	}
	for _, p := range pts {
		if !p.InUnitCube() {
			t.Fatalf("bucket point %v outside unit cube", p)
		}
	}
}

func TestInteriorShareProportionalToSelectivity(t *testing.T) {
	// Two disjoint queries with selectivities 0.4 and 0.1: the first
	// should receive ≈4× the interior points of the second.
	left := geom.NewBox(geom.Point{0, 0}, geom.Point{0.4, 1})
	right := geom.NewBox(geom.Point{0.6, 0}, geom.Point{1, 1})
	train := []core.LabeledQuery{
		{R: left, Sel: 0.4},
		{R: right, Sel: 0.1},
	}
	tr := New(2, 1000, 5)
	pts := tr.SamplePoints(train)
	inLeft, inRight := 0, 0
	for _, p := range pts {
		if left.Contains(p) {
			inLeft++
		} else if right.Contains(p) {
			inRight++
		}
	}
	ratio := float64(inLeft) / float64(inRight)
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("interior share ratio = %v (left %d, right %d), want ≈4", ratio, inLeft, inRight)
	}
	// The uniform 10% share (100 points) falls anywhere in the cube; the
	// two query boxes cover 80% of it, so ≈20 points land outside both.
	outside := len(pts) - inLeft - inRight
	if outside < 5 || outside > 60 {
		t.Fatalf("uniform-share points outside queries = %d of %d, want ≈20", outside, len(pts))
	}
}

func TestDeterministicSampling(t *testing.T) {
	g := gen2D(5)
	train := g.Generate(workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}, 40)
	a := New(2, 200, 9).SamplePoints(train)
	b := New(2, 200, 9).SamplePoints(train)
	for i := range a {
		if a[i].Dist(b[i]) != 0 {
			t.Fatalf("sampling not deterministic at point %d", i)
		}
	}
}

func TestHighDimensionalTraining(t *testing.T) {
	ds := dataset.Forest(6000, 2).NumericProjection(6)
	g := workload.NewGenerator(ds, 17)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 150, 150)
	m, err := New(6, 600, 3).TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	if rms := core.RMS(m, test); rms > 0.25 {
		t.Fatalf("6D test RMS = %v", rms)
	}
}

func TestBallQueriesHighDim(t *testing.T) {
	ds := dataset.Forest(5000, 4).NumericProjection(5)
	g := workload.NewGenerator(ds, 19)
	spec := workload.Spec{Class: workload.Ball, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 120, 120)
	m, err := New(5, 480, 11).TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	if rms := core.RMS(m, test); rms > 0.25 {
		t.Fatalf("5D ball test RMS = %v", rms)
	}
}

func TestEstimateBounds(t *testing.T) {
	g := gen2D(23)
	spec := workload.Spec{Class: workload.Halfspace, Centers: workload.Random}
	train, test := g.TrainTest(spec, 80, 200)
	m, err := New(2, 320, 29).TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range test {
		e := m.Estimate(z.R)
		if e < 0 || e > 1 {
			t.Fatalf("estimate %v outside [0,1]", e)
		}
	}
	if e := m.Estimate(geom.UnitCube(2)); math.Abs(e-1) > 1e-9 {
		t.Fatalf("unit-cube estimate = %v", e)
	}
}

func TestInteriorFractionOption(t *testing.T) {
	// With InteriorFraction ≈ 0 every bucket comes from the uniform
	// share; with ≈ 1 (almost) every bucket is inside some query.
	q := geom.NewBox(geom.Point{0.4, 0.4}, geom.Point{0.6, 0.6})
	train := []core.LabeledQuery{{R: q, Sel: 0.5}}
	allU := (&Trainer{Dim: 2, Opts: Options{K: 300, Seed: 1, InteriorFraction: 0.001}}).SamplePoints(train)
	inQ := 0
	for _, p := range allU {
		if q.Contains(p) {
			inQ++
		}
	}
	if inQ > 50 {
		t.Fatalf("uniform-only sampling put %d/300 in the query box", inQ)
	}
	allI := (&Trainer{Dim: 2, Opts: Options{K: 300, Seed: 1, InteriorFraction: 0.95}}).SamplePoints(train)
	inQ = 0
	for _, p := range allI {
		if q.Contains(p) {
			inQ++
		}
	}
	if inQ < 250 {
		t.Fatalf("interior sampling put only %d/300 in the query box", inQ)
	}
}

func TestZeroSelectivityWorkloadFallsBackToUniform(t *testing.T) {
	train := []core.LabeledQuery{
		{R: geom.NewBox(geom.Point{0, 0}, geom.Point{0.1, 0.1}), Sel: 0},
		{R: geom.NewBox(geom.Point{0.9, 0.9}, geom.Point{1, 1}), Sel: 0},
	}
	m, err := New(2, 100, 3).TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumBuckets() != 100 {
		t.Fatalf("bucket count %d", m.NumBuckets())
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := New(2, 0, 1).TrainHist([]core.LabeledQuery{{R: geom.UnitCube(2), Sel: 1}}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := New(2, 10, 1).TrainHist(nil); err == nil {
		t.Fatal("empty training set accepted")
	}
}
