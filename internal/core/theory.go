package core

import "math"

// This file implements the quantitative side of Theorem 2.1: the VC
// dimensions of the paper's range spaces (Section 2.2), the fat-shattering
// bound of Lemma 2.6, and the Bartlett–Long training-set size of
// Section 2.3. All constants hidden by O(·) in the paper are taken to be 1,
// so the values are comparable across settings rather than literal sample
// counts.

// VCDimOrthogonal returns the VC dimension of axis-aligned boxes in R^d,
// which is exactly 2d.
func VCDimOrthogonal(d int) int { return 2 * d }

// VCDimHalfspace returns the VC dimension of halfspaces in R^d, exactly d+1.
func VCDimHalfspace(d int) int { return d + 1 }

// VCDimBall returns the standard upper bound d+2 on the VC dimension of
// Euclidean balls in R^d.
func VCDimBall(d int) int { return d + 2 }

// FatShattering returns the Lemma 2.6 bound on the γ-fat-shattering
// dimension of the selectivity-function family of a range space with VC
// dimension lambda:
//
//	fat_S(γ) = Õ(1/γ^{λ+1}) — concretely (1/γ)·((1/γ)·log(1/γ))^λ,
//
// the per-witness-bin bound of Lemma 2.5 summed over the ⌈1/γ⌉ bins.
func FatShattering(gamma float64, lambda int) float64 {
	if gamma <= 0 || gamma >= 1 {
		return math.Inf(1)
	}
	inv := 1 / gamma
	lg := math.Max(1, math.Log(inv))
	return inv * math.Pow(inv*lg, float64(lambda))
}

// SampleComplexity returns the Bartlett–Long training-set size from
// Section 2.3,
//
//	n₀(ε,δ) = O( (1/ε²)·( fat(ε/9)·log²(1/ε) + log(1/δ) ) ),
//
// with unit constants and fat(·) from Lemma 2.6. Combined with the VC
// dimensions above this reproduces the Õ(1/ε^{λ+3}) headline of
// Theorem 2.1.
func SampleComplexity(eps, delta float64, lambda int) float64 {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return math.Inf(1)
	}
	lgEps := math.Max(1, math.Log(1/eps))
	return (FatShattering(eps/9, lambda)*lgEps*lgEps + math.Log(1/delta)) / (eps * eps)
}

// SampleComplexityOrthogonal, ...Halfspace, ...Ball specialize
// SampleComplexity to the three query classes of the introduction; their
// ε-exponents are 2d+3, d+4 and d+5 up to polylog factors.
func SampleComplexityOrthogonal(eps, delta float64, d int) float64 {
	return SampleComplexity(eps, delta, VCDimOrthogonal(d))
}

// SampleComplexityHalfspace is the linear-inequality specialization.
func SampleComplexityHalfspace(eps, delta float64, d int) float64 {
	return SampleComplexity(eps, delta, VCDimHalfspace(d))
}

// SampleComplexityBall is the distance-based specialization.
func SampleComplexityBall(eps, delta float64, d int) float64 {
	return SampleComplexity(eps, delta, VCDimBall(d))
}
