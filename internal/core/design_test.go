package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func randomSamples(r *rng.RNG, n, d int) []LabeledQuery {
	out := make([]LabeledQuery, n)
	for i := range out {
		c := make(geom.Point, d)
		s := make([]float64, d)
		for j := 0; j < d; j++ {
			c[j] = r.Float64()
			s[j] = r.Float64()
		}
		out[i] = LabeledQuery{R: geom.BoxFromCenter(c, s), Sel: r.Float64()}
	}
	return out
}

func randomBuckets(r *rng.RNG, n, d int) []geom.Box {
	out := make([]geom.Box, n)
	for i := range out {
		lo := make(geom.Point, d)
		hi := make(geom.Point, d)
		for j := 0; j < d; j++ {
			a, b := r.Float64(), r.Float64()
			lo[j], hi[j] = min(a, b), max(a, b)
		}
		out[i] = geom.Box{Lo: lo, Hi: hi}
	}
	return out
}

func TestDesignMatrixBoxesValues(t *testing.T) {
	// One query covering the left half; buckets: left half, right half,
	// and a box straddling the middle.
	q := geom.NewBox(geom.Point{0, 0}, geom.Point{0.5, 1})
	buckets := []geom.Box{
		geom.NewBox(geom.Point{0, 0}, geom.Point{0.5, 1}),
		geom.NewBox(geom.Point{0.5, 0}, geom.Point{1, 1}),
		geom.NewBox(geom.Point{0.25, 0}, geom.Point{0.75, 1}),
	}
	a := DesignMatrixBoxes([]LabeledQuery{{R: q, Sel: 0.4}}, buckets)
	want := []float64{1, 0, 0.5}
	for j, w := range want {
		if got := a.At(0, j); got != w {
			t.Fatalf("A[0][%d] = %v, want %v", j, got, w)
		}
	}
}

func TestDesignMatrixZeroVolumeBucket(t *testing.T) {
	q := geom.UnitCube(2)
	thin := geom.NewBox(geom.Point{0.5, 0}, geom.Point{0.5, 1})
	a := DesignMatrixBoxes([]LabeledQuery{{R: q, Sel: 1}}, []geom.Box{thin})
	if got := a.At(0, 0); got != 0 {
		t.Fatalf("zero-volume bucket column = %v", got)
	}
}

func TestDesignMatrixPointsValues(t *testing.T) {
	q := geom.NewBall(geom.Point{0.5, 0.5}, 0.2)
	pts := []geom.Point{{0.5, 0.5}, {0.9, 0.9}, {0.6, 0.5}}
	a := DesignMatrixPoints([]LabeledQuery{{R: q, Sel: 0.1}}, pts)
	want := []float64{1, 0, 1}
	for j, w := range want {
		if got := a.At(0, j); got != w {
			t.Fatalf("A[0][%d] = %v, want %v", j, got, w)
		}
	}
}

// Parallel assembly must be bit-for-bit identical to sequential assembly.
func TestDesignMatrixParallelDeterminism(t *testing.T) {
	r := rng.New(17)
	for _, d := range []int{1, 2, 4} {
		samples := randomSamples(r, 120, d)
		buckets := randomBuckets(r, 90, d)
		seq := DesignMatrixBoxesWith(samples, buckets, 1)
		for _, workers := range []int{2, 4, 8, 200} {
			par := DesignMatrixBoxesWith(samples, buckets, workers)
			for i := range seq.Data {
				if seq.Data[i] != par.Data[i] {
					t.Fatalf("d=%d workers=%d: cell %d differs", d, workers, i)
				}
			}
		}
	}
}

func TestDesignMatrixPointsParallelDeterminism(t *testing.T) {
	r := rng.New(31)
	samples := randomSamples(r, 150, 3)
	pts := make([]geom.Point, 80)
	for i := range pts {
		p := make(geom.Point, 3)
		for j := range p {
			p[j] = r.Float64()
		}
		pts[i] = p
	}
	seq := DesignMatrixPointsWith(samples, pts, 1)
	for _, workers := range []int{2, 5, 64} {
		par := DesignMatrixPointsWith(samples, pts, workers)
		for i := range seq.Data {
			if seq.Data[i] != par.Data[i] {
				t.Fatalf("workers=%d: cell %d differs", workers, i)
			}
		}
	}
}

func TestSelectivitiesExtraction(t *testing.T) {
	samples := []LabeledQuery{
		{R: geom.UnitCube(1), Sel: 0.25},
		{R: geom.UnitCube(1), Sel: 0.75},
	}
	s := Selectivities(samples)
	if len(s) != 2 || s[0] != 0.25 || s[1] != 0.75 {
		t.Fatalf("Selectivities = %v", s)
	}
}
