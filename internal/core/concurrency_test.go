package core_test

// Enforces the concurrency contract documented on core.Model: after
// training, Estimate and NumBuckets must be safe for concurrent readers
// with no external locking, including while the model reference itself is
// being hot-swapped. Run with -race to catch violations (lazy caches,
// shared scratch buffers, generator reseeding).

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hist"
	"repro/internal/ptshist"
	"repro/internal/quicksel"
	"repro/internal/workload"
)

func TestEstimateConcurrentReaders(t *testing.T) {
	ds := dataset.Power(3000, 1).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 7)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 60, 40)

	trainers := []core.Trainer{
		hist.New(2, 120),
		ptshist.New(2, 120, 3),
		quicksel.New(2, 5),
	}
	for _, tr := range trainers {
		tr := tr
		t.Run(tr.Name(), func(t *testing.T) {
			t.Parallel()
			m1, err := tr.Train(train)
			if err != nil {
				t.Fatal(err)
			}
			m2, err := tr.Train(train[:len(train)/2])
			if err != nil {
				t.Fatal(err)
			}
			want1 := core.Estimates(m1, test)
			want2 := core.Estimates(m2, test)

			// 8 reader goroutines hammer whichever model is current
			// while the main goroutine hot-swaps between the two —
			// the access pattern of a serving registry.
			var cur atomic.Pointer[core.Model]
			cur.Store(&m1)
			var wg sync.WaitGroup
			stop := make(chan struct{})
			errc := make(chan error, 8)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						m := *cur.Load()
						for i, z := range test {
							got := m.Estimate(z.R)
							if math.IsNaN(got) || got < 0 || got > 1 {
								errc <- fmt.Errorf("estimate %v outside [0,1]", got)
								return
							}
							// The estimate must match one of the two
							// coherent models — a torn read would not.
							if got != want1[i] && got != want2[i] {
								errc <- fmt.Errorf("estimate %v matches neither model (%v, %v): torn read", got, want1[i], want2[i])
								return
							}
							_ = m.NumBuckets()
						}
					}
				}()
			}
			for swap := 0; swap < 200; swap++ {
				if swap%2 == 0 {
					cur.Store(&m2)
				} else {
					cur.Store(&m1)
				}
			}
			close(stop)
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}
		})
	}
}
