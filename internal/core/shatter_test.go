package core

import (
	"testing"

	"repro/internal/geom"
)

// Figure 2(i) of the paper: a diamond of 4 points in the plane is shattered
// by rectangles.
func TestRectanglesShatterDiamond(t *testing.T) {
	diamond := []geom.Point{
		{0.5, 0.9}, {0.9, 0.5}, {0.5, 0.1}, {0.1, 0.5},
	}
	if !CanShatterBoxes(diamond) {
		t.Fatal("rectangles fail to shatter the 4-point diamond")
	}
}

// Figure 2(ii): no 5-point set in the plane is shattered by rectangles —
// the extreme-coordinate argument. We verify on several configurations.
func TestRectanglesCannotShatterFivePoints(t *testing.T) {
	configs := [][]geom.Point{
		{{0.5, 0.9}, {0.9, 0.5}, {0.5, 0.1}, {0.1, 0.5}, {0.5, 0.5}},
		{{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.5}, {0.1, 0.9}, {0.9, 0.9}},
		{{0.2, 0.3}, {0.7, 0.8}, {0.4, 0.6}, {0.9, 0.2}, {0.3, 0.9}},
	}
	for i, pts := range configs {
		if CanShatterBoxes(pts) {
			t.Fatalf("config %d: 5 points shattered by rectangles (impossible, VC-dim 4)", i)
		}
	}
}

// 3D boxes have VC dimension 6: the octahedron vertices are shattered.
func TestBoxesShatterOctahedron3D(t *testing.T) {
	oct := []geom.Point{
		{0.9, 0.5, 0.5}, {0.1, 0.5, 0.5},
		{0.5, 0.9, 0.5}, {0.5, 0.1, 0.5},
		{0.5, 0.5, 0.9}, {0.5, 0.5, 0.1},
	}
	if !CanShatterBoxes(oct) {
		t.Fatal("3D boxes fail to shatter the octahedron (VC-dim 2d = 6)")
	}
}

// Halfspaces in the plane have VC dimension 3: a triangle is shattered,
// and no 4-point set is (either a point is inside the hull of the others,
// or the XOR split of a convex quadrilateral is not linearly separable).
func TestHalfspacesShatterTriangle(t *testing.T) {
	tri := []geom.Point{{0.2, 0.2}, {0.8, 0.2}, {0.5, 0.8}}
	if !CanShatterHalfspaces(tri) {
		t.Fatal("halfspaces fail to shatter a triangle (VC-dim d+1 = 3)")
	}
}

func TestHalfspacesCannotShatterFourPoints(t *testing.T) {
	configs := [][]geom.Point{
		// Convex quadrilateral: opposite corners not separable.
		{{0.1, 0.1}, {0.9, 0.1}, {0.9, 0.9}, {0.1, 0.9}},
		// Point inside triangle: singleton {inner} not selectable.
		{{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.9}, {0.5, 0.4}},
	}
	for i, pts := range configs {
		if CanShatterHalfspaces(pts) {
			t.Fatalf("config %d: 4 points shattered by halfspaces (impossible, VC-dim 3)", i)
		}
	}
}

func TestHalfspaceSelectsSpecificSubsets(t *testing.T) {
	square := []geom.Point{{0.1, 0.1}, {0.9, 0.1}, {0.9, 0.9}, {0.1, 0.9}}
	// Adjacent pair (bottom edge): separable by y ≤ 0.5.
	if !HalfspaceSelects(square, 0b0011) {
		t.Fatal("bottom edge of square not halfspace-selectable")
	}
	// Diagonal pair: not separable.
	if HalfspaceSelects(square, 0b0101) {
		t.Fatal("diagonal of square halfspace-selectable (XOR is not linear)")
	}
}

// Balls in the plane: VC dimension ≥ 3 via a triangle; diagonal of a square
// is ball-selectable (unlike halfspaces) but the full 5-point configuration
// with center is not shattered.
func TestBallsShatterTriangle(t *testing.T) {
	tri := []geom.Point{{0.2, 0.2}, {0.8, 0.2}, {0.5, 0.8}}
	if !CanShatterBalls(tri) {
		t.Fatal("balls fail to shatter a triangle")
	}
}

func TestBallSelectsSquareSubsets(t *testing.T) {
	square := []geom.Point{{0.1, 0.1}, {0.9, 0.1}, {0.9, 0.9}, {0.1, 0.9}}
	// Each singleton is ball-selectable.
	for i := 0; i < 4; i++ {
		if !BallSelects(square, 1<<uint(i)) {
			t.Fatalf("singleton %d not ball-selectable", i)
		}
	}
	// Diagonal pair of a square is NOT (generalized-)ball selectable:
	// any disc containing both diagonal corners of a square covers one
	// of the other corners.
	if BallSelects(square, 0b0101) {
		t.Fatal("diagonal of square reported ball-selectable")
	}
}

func TestBoxSelectsEdgeCases(t *testing.T) {
	pts := []geom.Point{{0.2, 0.2}, {0.5, 0.5}, {0.8, 0.8}}
	// Empty subset always selectable.
	if !BoxSelects(pts, 0) {
		t.Fatal("empty subset not box-selectable")
	}
	// {outer two} cannot exclude the middle point on the diagonal.
	if BoxSelects(pts, 0b101) {
		t.Fatal("outer pair selectable despite middle point in bounding box")
	}
	// Full set always selectable.
	if !BoxSelects(pts, 0b111) {
		t.Fatal("full set not box-selectable")
	}
}
