package core

import (
	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/lp"
)

// This file provides exact shattering checkers for small point sets, used
// to validate the VC-dimension facts that Theorem 2.1's sample bounds rest
// on (e.g. Figure 2 of the paper: rectangles shatter some 4-point sets in
// the plane but no 5-point set).

// BoxSelects reports whether some axis-aligned box contains exactly the
// subset E of points (given as a bit mask over points). A box realizes E
// iff the bounding box of E contains no point outside E.
func BoxSelects(points []geom.Point, mask uint) bool {
	d := len(points[0])
	first := true
	lo := make(geom.Point, d)
	hi := make(geom.Point, d)
	for i, p := range points {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if first {
			copy(lo, p)
			copy(hi, p)
			first = false
			continue
		}
		for j := 0; j < d; j++ {
			if p[j] < lo[j] {
				lo[j] = p[j]
			}
			if p[j] > hi[j] {
				hi[j] = p[j]
			}
		}
	}
	if first {
		return true // empty subset: a degenerate box away from all points
	}
	bb := geom.NewBox(lo, hi)
	for i, p := range points {
		if mask&(1<<uint(i)) != 0 {
			continue
		}
		if bb.Contains(p) {
			return false
		}
	}
	return true
}

// CanShatterBoxes reports whether axis-aligned boxes shatter the point set
// (definition in Section 2.1). Exponential in len(points); intended for the
// small sets of VC-dimension arguments.
func CanShatterBoxes(points []geom.Point) bool {
	if len(points) > 20 {
		panic("core: CanShatterBoxes limited to 20 points")
	}
	for mask := uint(0); mask < 1<<uint(len(points)); mask++ {
		if !BoxSelects(points, mask) {
			return false
		}
	}
	return true
}

// HalfspaceSelects reports whether some halfspace a·x ≥ b strictly
// separates the subset E (mask bits set) from its complement. Decided by
// the margin-maximization LP
//
//	max t  s.t.  a·x − b ≥ t (x ∈ E),  a·x − b ≤ −t (x ∉ E),
//	             −1 ≤ aᵢ ≤ 1, −B ≤ b ≤ B,
//
// which has optimum > 0 iff the subsets are linearly separable.
func HalfspaceSelects(points []geom.Point, mask uint) bool {
	d := len(points[0])
	n := len(points)
	// Variables (all ≥ 0): a⁺ (d), a⁻ (d), b⁺, b⁻, t  →  nv = 2d+3.
	nv := 2*d + 3
	it, ib1, ib2 := 2*d+2, 2*d, 2*d+1
	rows := make([][]float64, 0, n+nv)
	rhs := make([]float64, 0, n+nv)
	for i, p := range points {
		row := make([]float64, nv)
		inE := mask&(1<<uint(i)) != 0
		sign := 1.0
		if inE {
			sign = -1 // −a·x + b + t ≤ 0
		}
		for j := 0; j < d; j++ {
			row[j] = sign * p[j]
			row[d+j] = -sign * p[j]
		}
		row[ib1] = -sign
		row[ib2] = sign
		row[it] = 1
		rows = append(rows, row)
		rhs = append(rhs, 0)
	}
	// Box bounds keep the LP bounded: each variable ≤ 2.
	for j := 0; j < nv; j++ {
		row := make([]float64, nv)
		row[j] = 1
		rows = append(rows, row)
		rhs = append(rhs, 2)
	}
	c := make([]float64, nv)
	c[it] = -1 // maximize t
	sol, err := lp.Solve(lp.Problem{C: c, Aub: linalg.FromRows(rows), Bub: rhs})
	if err != nil {
		return false
	}
	return sol.X[it] > 1e-7
}

// CanShatterHalfspaces reports whether halfspaces shatter the point set.
func CanShatterHalfspaces(points []geom.Point) bool {
	if len(points) > 16 {
		panic("core: CanShatterHalfspaces limited to 16 points")
	}
	for mask := uint(0); mask < 1<<uint(len(points)); mask++ {
		if !HalfspaceSelects(points, mask) {
			return false
		}
	}
	return true
}

// liftToParaboloid maps x ∈ R^d to (x, ‖x‖²) ∈ R^{d+1}. Ball membership in
// R^d becomes halfspace membership after this lifting, the classical
// reduction behind the VC-dimension bound d+2 for balls.
func liftToParaboloid(points []geom.Point) []geom.Point {
	out := make([]geom.Point, len(points))
	for i, p := range points {
		q := make(geom.Point, len(p)+1)
		copy(q, p)
		s := 0.0
		for _, v := range p {
			s += v * v
		}
		q[len(p)] = s
		out[i] = q
	}
	return out
}

// BallSelects reports whether some ball contains exactly the subset E.
// ‖x−c‖² ≤ r² is linear in the lifted coordinates, so this reduces to
// halfspace selection on the paraboloid lift. (The reduction decides
// selection by *generalized* balls — including halfspace limits — which
// coincides with balls for points in general position.)
func BallSelects(points []geom.Point, mask uint) bool {
	return HalfspaceSelects(liftToParaboloid(points), mask)
}

// CanShatterBalls reports whether balls (in the generalized, lifted sense)
// shatter the point set.
func CanShatterBalls(points []geom.Point) bool {
	if len(points) > 16 {
		panic("core: CanShatterBalls limited to 16 points")
	}
	for mask := uint(0); mask < 1<<uint(len(points)); mask++ {
		if !BallSelects(points, mask) {
			return false
		}
	}
	return true
}
