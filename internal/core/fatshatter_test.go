package core

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// circlePoints places n points evenly on a circle.
func circlePoints(n int, cx, cy, r float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = geom.Point{cx + r*math.Cos(theta), cy + r*math.Sin(theta)}
	}
	return pts
}

// figure5Polygons builds k convex polygons over 2^k circle points such
// that point j lies in polygon i iff bit i of j is set — the Figure 5
// construction generalized from k = 3.
func figure5Polygons(k int) ([]geom.Range, []geom.Point) {
	n := 1 << uint(k)
	pts := circlePoints(n, 0.5, 0.5, 0.4)
	ranges := make([]geom.Range, k)
	for i := 0; i < k; i++ {
		var members []geom.Point
		for j := 0; j < n; j++ {
			if j&(1<<uint(i)) != 0 {
				members = append(members, pts[j])
			}
		}
		ranges[i] = geom.ConvexHull(members)
	}
	return ranges, pts
}

// Points in convex position are vertices of their hull, so a hull of a
// subset contains exactly that subset of the circle points — verify the
// construction before using it.
func TestFigure5IncidenceStructure(t *testing.T) {
	ranges, pts := figure5Polygons(3)
	for j, p := range pts {
		got := IncidencePattern(ranges, p)
		if got != uint(j) {
			t.Fatalf("point %d has pattern %03b, want %03b", j, got, j)
		}
	}
}

// Lemma 2.7 / Figure 5: convex polygons are γ-shattered by delta
// distributions for every γ ≤ 1/2, at any size k — the fat-shattering
// dimension is unbounded, hence selectivity is not learnable.
func TestConvexPolygonsFatShatteredAtAnySize(t *testing.T) {
	for k := 3; k <= 6; k++ {
		ranges, pts := figure5Polygons(k)
		if !DualShattered(ranges, pts) {
			t.Fatalf("k=%d: dual not shattered", k)
		}
		for _, gamma := range []float64{0.1, 0.25, 0.5} {
			w := DeltaShatterWitness(ranges, pts, gamma)
			if w == nil {
				t.Fatalf("k=%d γ=%v: delta construction failed", k, gamma)
			}
			// Spot-check the witness: each subset's point has exactly
			// that incidence pattern.
			for mask, p := range w {
				if got := IncidencePattern(ranges, p); got != uint(mask) {
					t.Fatalf("k=%d: witness for %b has pattern %b", k, mask, got)
				}
			}
		}
	}
}

func TestDeltaShatterRejectsGammaAboveHalf(t *testing.T) {
	ranges, pts := figure5Polygons(3)
	if DeltaShatterWitness(ranges, pts, 0.51) != nil {
		t.Fatal("γ > 1/2 accepted (delta selectivities cannot separate beyond 1/2)")
	}
	if DeltaShatterWitness(ranges, pts, 0) != nil {
		t.Fatal("γ = 0 accepted")
	}
}

// Nested boxes cannot be dual-shattered: the pattern "outer only" is
// unrealizable when inner ⊆ outer.
func TestNestedBoxesNotDualShattered(t *testing.T) {
	outer := geom.NewBox(geom.Point{0.1, 0.1}, geom.Point{0.9, 0.9})
	inner := geom.NewBox(geom.Point{0.3, 0.3}, geom.Point{0.7, 0.7})
	ranges := []geom.Range{inner, outer}
	// A dense candidate grid.
	var candidates []geom.Point
	for x := 0.0; x <= 1; x += 0.02 {
		for y := 0.0; y <= 1; y += 0.02 {
			candidates = append(candidates, geom.Point{x, y})
		}
	}
	if DualShattered(ranges, candidates) {
		t.Fatal("nested boxes reported dual-shattered")
	}
	if DeltaShatterWitness(ranges, candidates, 0.5) != nil {
		t.Fatal("nested boxes reported delta-shattered")
	}
}

// The empirical fat-shattering lower bound grows without bound for
// polygons (we check up to 6) but is capped by the dual structure for
// nested families.
func TestFatShatteringLowerBound(t *testing.T) {
	ranges, pts := figure5Polygons(6)
	if got := FatShatteringLowerBound(ranges, pts, 0.5, 6); got != 6 {
		t.Fatalf("polygon fat-shattering lower bound = %d, want 6", got)
	}
	// Nested boxes stall at 1.
	nested := []geom.Range{
		geom.NewBox(geom.Point{0.3, 0.3}, geom.Point{0.7, 0.7}),
		geom.NewBox(geom.Point{0.1, 0.1}, geom.Point{0.9, 0.9}),
	}
	var candidates []geom.Point
	for x := 0.0; x <= 1; x += 0.05 {
		for y := 0.0; y <= 1; y += 0.05 {
			candidates = append(candidates, geom.Point{x, y})
		}
	}
	if got := FatShatteringLowerBound(nested, candidates, 0.5, 2); got != 1 {
		t.Fatalf("nested-box bound = %d, want 1", got)
	}
}
