package core

import "repro/internal/geom"

// This file implements the constructive side of Lemma 2.7 of the paper:
// if the dual range space is shattered — i.e. for every subset E of a
// range set T there exists a point x_E lying in exactly the ranges of E —
// then the selectivity-function family γ-shatters T for every γ ∈ (0, 1/2]
// with witness σ ≡ 1/2, realized by delta (point-mass) distributions:
// s_δ(x_E)(R) = 1 ≥ 1/2 + γ for R ∈ E and 0 ≤ 1/2 − γ for R ∉ E.
//
// Figure 5's three convex polygons (and, generally, polygons over points
// in convex position) realize every pattern, which machine-checks the
// paper's conclusion that convex-polygon selectivity is not learnable.

// IncidencePattern returns the bit mask of ranges containing the point.
func IncidencePattern(ranges []geom.Range, p geom.Point) uint {
	var mask uint
	for i, r := range ranges {
		if r.Contains(p) {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// DualShattered reports whether every one of the 2^len(ranges) incidence
// patterns is realized by some candidate point — the hypothesis of
// Lemma 2.7. Limited to 20 ranges.
func DualShattered(ranges []geom.Range, candidates []geom.Point) bool {
	if len(ranges) > 20 {
		panic("core: DualShattered limited to 20 ranges")
	}
	need := uint(1) << uint(len(ranges))
	seen := make(map[uint]bool, need)
	for _, p := range candidates {
		seen[IncidencePattern(ranges, p)] = true
		if uint(len(seen)) == need {
			return true
		}
	}
	return uint(len(seen)) == need
}

// DeltaShatterWitness verifies the Lemma 2.7 construction explicitly: for
// every subset E of the ranges it finds a candidate point x_E whose delta
// distribution realizes Equation 2 with witness σ ≡ 1/2 at the given γ,
// returning the chosen points indexed by subset mask (nil when some subset
// is unrealizable or γ > 1/2).
func DeltaShatterWitness(ranges []geom.Range, candidates []geom.Point, gamma float64) []geom.Point {
	if gamma <= 0 || gamma > 0.5 {
		return nil
	}
	if len(ranges) > 20 {
		panic("core: DeltaShatterWitness limited to 20 ranges")
	}
	need := 1 << uint(len(ranges))
	witness := make([]geom.Point, need)
	found := 0
	for _, p := range candidates {
		mask := IncidencePattern(ranges, p)
		if witness[mask] == nil {
			// Check Equation 2 explicitly for this delta distribution:
			// s(R) = 1 for R ∋ p must be ≥ 1/2 + γ; s(R) = 0 for R ∌ p
			// must be ≤ 1/2 − γ. Both hold exactly when γ ≤ 1/2.
			witness[mask] = p
			found++
			if found == need {
				return witness
			}
		}
	}
	return nil
}

// FatShatteringLowerBound returns the largest k ≤ maxK such that the first
// k ranges are γ-shattered via the delta construction — an empirical lower
// bound on fat_S(γ) for the given range family and candidate points.
func FatShatteringLowerBound(ranges []geom.Range, candidates []geom.Point, gamma float64, maxK int) int {
	best := 0
	for k := 1; k <= maxK && k <= len(ranges); k++ {
		if DeltaShatterWitness(ranges[:k], candidates, gamma) == nil {
			break
		}
		best = k
	}
	return best
}
