// Package core defines the learning framework of Section 2 of the paper:
// labeled query samples, the Model/Trainer contract every estimator in this
// repository implements, the loss functions used for training and
// evaluation, and the learning-theoretic calculators (VC dimensions,
// fat-shattering bound of Lemma 2.6, Bartlett–Long sample complexity) that
// Theorem 2.1 is built from.
package core

import (
	"math"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// LabeledQuery is one training or test example z = (R, s) ∈ R × [0,1]:
// a query range with its (observed) selectivity. As the paper's remark
// notes, s need not equal s_D(R) for any distribution D — labels may be
// noisy.
type LabeledQuery struct {
	R   geom.Range
	Sel float64
}

// Model is a learned selectivity function s_D induced by some data
// distribution D (histogram or discrete).
//
// Concurrency contract: once training returns, a Model is immutable and
// both methods must be safe for any number of concurrent readers without
// external locking — a serving layer calls Estimate from many goroutines
// against a model that may be atomically swapped out underneath it.
// Implementations must not reseed generators or otherwise mutate
// observable receiver state inside Estimate/NumBuckets. The one sanctioned
// exception is an internally synchronized, build-exactly-once acceleration
// index (sync.Once) whose presence never changes results beyond float
// summation order — the BVH of the box-bucketed models. All model types in
// this repository satisfy the contract; internal/core's race test hammers
// them under the race detector.
type Model interface {
	// Estimate returns the predicted selectivity of the query range,
	// always in [0,1].
	Estimate(r geom.Range) float64
	// NumBuckets returns the model complexity (number of histogram
	// buckets or support points).
	NumBuckets() int
}

// Accelerable is the capability interface of models that carry a
// prebuildable acceleration index (the BVH of the box-bucketed
// histograms). The serving layer and the experiment runners call
// Accelerate through this interface — never via model type switches — so
// any new model type opts into the fast path just by implementing it.
type Accelerable interface {
	Model
	// Accelerate builds the model's acceleration index if it would pay
	// off (idempotent, safe under concurrency). Estimate uses the index
	// automatically whether or not Accelerate was called; calling it
	// eagerly just moves the one-time build cost off the first query.
	Accelerate()
}

// Accelerate eagerly builds m's acceleration index when the model offers
// one, reporting whether it did. Publishing paths (model upload, retrain
// hot-swap) call this so the first estimate after a swap is already fast.
func Accelerate(m Model) bool {
	a, ok := m.(Accelerable)
	if ok {
		a.Accelerate()
	}
	return ok
}

// Reweightable is the capability interface of bucket-weight models whose
// structure (bucket geometry, acceleration index) is fixed after training
// while the weight vector alone carries the learned distribution — the
// QUADHIST and QUICKSEL families. It is the contract the online-learning
// subsystem (internal/online) builds on: a feedback item becomes a new
// weight vector published as a structurally-shared copy of the model, with
// no retraining and no index rebuild. As with Accelerable, consumers
// discover the capability through this interface, never via model type
// switches, so a new model family opts into online updates just by
// implementing it.
type Reweightable interface {
	Model
	// WeightView exposes the model's bucket geometry and current weight
	// vector. Both slices are live model state: callers must not mutate
	// them (the Model concurrency contract already demands immutability).
	WeightView() (buckets []geom.Box, weights []float64)
	// WithWeights returns a new model of the same family that shares the
	// receiver's bucket geometry — and, when one exists, its acceleration
	// index structure — with w as its weight vector. w is captured, not
	// copied; the caller must not mutate it afterwards. The receiver is
	// unchanged: concurrent estimates against it never see the new
	// weights.
	WithWeights(w []float64) Model
}

// Trainer is a learning procedure A: finite sample sequences → models.
type Trainer interface {
	// Train fits a model to the labeled sample.
	Train(samples []LabeledQuery) (Model, error)
	// Name identifies the method in experiment output.
	Name() string
}

// MSE returns the mean squared loss (Equation 1 of the paper) of the model
// on the sample.
func MSE(m Model, samples []LabeledQuery) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := 0.0
	for _, z := range samples {
		d := m.Estimate(z.R) - z.Sel
		s += d * d
	}
	return s / float64(len(samples))
}

// RMS returns the root mean squared error, the headline metric of the
// paper's figures.
func RMS(m Model, samples []LabeledQuery) float64 {
	return math.Sqrt(MSE(m, samples))
}

// LInf returns the maximum absolute error over the sample (Section 4.6).
func LInf(m Model, samples []LabeledQuery) float64 {
	worst := 0.0
	for _, z := range samples {
		worst = math.Max(worst, math.Abs(m.Estimate(z.R)-z.Sel))
	}
	return worst
}

// estimatesParallelThreshold is the batch size at which Estimates fans
// out across the shared worker pool; below it the per-region overhead
// outweighs the estimate work.
const estimatesParallelThreshold = 64

// Estimates evaluates the model on every sample, returning predictions in
// sample order. Large batches are evaluated on the shared deterministic
// worker pool — each prediction lands in its own index slot, so the
// result is byte-identical for any worker count. This is the same batched
// kernel the serving layer's /v1/estimate uses.
func Estimates(m Model, samples []LabeledQuery) []float64 {
	return EstimatesWith(m, samples, 0)
}

// EstimatesWith is Estimates with an explicit worker count (0 = pool
// default, 1 = serial).
func EstimatesWith(m Model, samples []LabeledQuery, workers int) []float64 {
	ranges := make([]geom.Range, len(samples))
	for i := range samples {
		ranges[i] = samples[i].R
	}
	out := make([]float64, len(samples))
	EstimateRangesInto(m, ranges, workers, out)
	return out
}

// EstimateRangesInto evaluates the model on every range, writing
// predictions into out (which must have len(ranges) slots) in range
// order. It is the one batched-prediction kernel shared by Estimates and
// the serving layer: each prediction lands in its own index slot, so the
// output is byte-identical for any worker count. workers 0 means the
// pool default; batches below the parallel threshold run serially.
func EstimateRangesInto(m Model, ranges []geom.Range, workers int, out []float64) {
	if len(out) != len(ranges) {
		panic("core: EstimateRangesInto output length mismatch")
	}
	if workers <= 0 && len(ranges) < estimatesParallelThreshold {
		workers = 1
	}
	if workers == 1 {
		// Inline serial loop: identical results to the one-worker pool
		// path (both are index-addressed), but the closure below never
		// materializes — the serving layer's zero-allocation estimate
		// path depends on this.
		for i, r := range ranges {
			out[i] = m.Estimate(r)
		}
		return
	}
	parallel.ForEachChunk(len(ranges), workers, 0, func(i int) {
		out[i] = m.Estimate(ranges[i])
	})
}

// EstimateRangesTraced is EstimateRangesInto wrapped in a child span of
// parent named "core.estimate_ranges", annotated with the batch size. With
// an inactive parent span the wrapper is free: the zero Span's Child and
// End are no-ops.
func EstimateRangesTraced(m Model, ranges []geom.Range, workers int, out []float64, parent obs.Span) {
	sp := parent.Child("core.estimate_ranges")
	sp.Items = int64(len(ranges))
	EstimateRangesInto(m, ranges, workers, out)
	sp.End()
}

// Clamp01 clips a prediction to the valid selectivity interval.
func Clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
