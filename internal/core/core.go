// Package core defines the learning framework of Section 2 of the paper:
// labeled query samples, the Model/Trainer contract every estimator in this
// repository implements, the loss functions used for training and
// evaluation, and the learning-theoretic calculators (VC dimensions,
// fat-shattering bound of Lemma 2.6, Bartlett–Long sample complexity) that
// Theorem 2.1 is built from.
package core

import (
	"math"

	"repro/internal/geom"
)

// LabeledQuery is one training or test example z = (R, s) ∈ R × [0,1]:
// a query range with its (observed) selectivity. As the paper's remark
// notes, s need not equal s_D(R) for any distribution D — labels may be
// noisy.
type LabeledQuery struct {
	R   geom.Range
	Sel float64
}

// Model is a learned selectivity function s_D induced by some data
// distribution D (histogram or discrete).
//
// Concurrency contract: once training returns, a Model is immutable and
// both methods must be safe for any number of concurrent readers without
// external locking — a serving layer calls Estimate from many goroutines
// against a model that may be atomically swapped out underneath it.
// Implementations must not lazily initialize caches, reseed generators, or
// otherwise mutate receiver state inside Estimate/NumBuckets. All model
// types in this repository satisfy the contract (their estimators are pure
// reads over slices fixed at training time); internal/core's race test
// hammers them under the race detector.
type Model interface {
	// Estimate returns the predicted selectivity of the query range,
	// always in [0,1].
	Estimate(r geom.Range) float64
	// NumBuckets returns the model complexity (number of histogram
	// buckets or support points).
	NumBuckets() int
}

// Trainer is a learning procedure A: finite sample sequences → models.
type Trainer interface {
	// Train fits a model to the labeled sample.
	Train(samples []LabeledQuery) (Model, error)
	// Name identifies the method in experiment output.
	Name() string
}

// MSE returns the mean squared loss (Equation 1 of the paper) of the model
// on the sample.
func MSE(m Model, samples []LabeledQuery) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := 0.0
	for _, z := range samples {
		d := m.Estimate(z.R) - z.Sel
		s += d * d
	}
	return s / float64(len(samples))
}

// RMS returns the root mean squared error, the headline metric of the
// paper's figures.
func RMS(m Model, samples []LabeledQuery) float64 {
	return math.Sqrt(MSE(m, samples))
}

// LInf returns the maximum absolute error over the sample (Section 4.6).
func LInf(m Model, samples []LabeledQuery) float64 {
	worst := 0.0
	for _, z := range samples {
		worst = math.Max(worst, math.Abs(m.Estimate(z.R)-z.Sel))
	}
	return worst
}

// Estimates evaluates the model on every sample, returning predictions.
func Estimates(m Model, samples []LabeledQuery) []float64 {
	out := make([]float64, len(samples))
	for i, z := range samples {
		out[i] = m.Estimate(z.R)
	}
	return out
}

// Clamp01 clips a prediction to the valid selectivity interval.
func Clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
