package core

import (
	"testing"

	"repro/internal/geom"
)

// volModel is a minimal deterministic Model for batch-evaluation tests.
type volModel struct{ dim int }

func (v volModel) Estimate(r geom.Range) float64 {
	return Clamp01(r.IntersectBoxVolume(geom.UnitCube(v.dim)))
}
func (v volModel) NumBuckets() int { return 1 }

// accelModel counts Accelerate calls.
type accelModel struct {
	volModel
	accelerated int
}

func (a *accelModel) Accelerate() { a.accelerated++ }

func TestAccelerateCapability(t *testing.T) {
	if Accelerate(volModel{dim: 2}) {
		t.Fatal("plain model reported as Accelerable")
	}
	a := &accelModel{volModel: volModel{dim: 2}}
	if !Accelerate(a) || a.accelerated != 1 {
		t.Fatalf("Accelerate helper: ok=%v calls=%d", a.accelerated == 1, a.accelerated)
	}
}

// Estimates must return byte-identical results for any worker count and
// for batches on both sides of the parallel threshold.
func TestEstimatesWorkerCountInvariant(t *testing.T) {
	for _, n := range []int{1, estimatesParallelThreshold - 1, 4 * estimatesParallelThreshold} {
		samples := make([]LabeledQuery, n)
		for i := range samples {
			f := float64(i+1) / float64(n+1)
			samples[i] = LabeledQuery{R: geom.NewBox(geom.Point{0, 0}, geom.Point{f, 1 - f/2})}
		}
		m := volModel{dim: 2}
		want := make([]float64, n)
		for i, z := range samples {
			want[i] = m.Estimate(z.R)
		}
		for _, workers := range []int{0, 1, 2, 8} {
			got := EstimatesWith(m, samples, workers)
			if len(got) != n {
				t.Fatalf("workers=%d: %d results, want %d", workers, len(got), n)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d n=%d: result[%d] = %v, want %v (not byte-identical)", workers, n, i, got[i], want[i])
				}
			}
		}
		if got := Estimates(m, samples); len(got) != n {
			t.Fatalf("Estimates returned %d results, want %d", len(got), n)
		}
	}
}
