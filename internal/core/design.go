package core

import (
	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/parallel"
)

// parallelThreshold is the m·n size above which design-matrix assembly
// fans out across the shared worker pool. Rows are independent, so
// parallel assembly is bit-for-bit identical to sequential assembly.
const parallelThreshold = 1 << 16

// designWorkers picks the assembly parallelism for an m×n matrix.
func designWorkers(m, n int) int {
	if m*n < parallelThreshold {
		return 1
	}
	return parallel.Workers(0)
}

// DesignMatrixBoxes assembles the weight-estimation design matrix of
// Equation 6: A[i][j] = vol(Bⱼ ∩ Rᵢ)/vol(Bⱼ) for box buckets Bⱼ and query
// ranges Rᵢ. Zero-volume buckets contribute zero columns. Large matrices
// are assembled in parallel (deterministically).
func DesignMatrixBoxes(samples []LabeledQuery, buckets []geom.Box) *linalg.Matrix {
	return DesignMatrixBoxesWith(samples, buckets, designWorkers(len(samples), len(buckets)))
}

// DesignMatrixBoxesWith is DesignMatrixBoxes with an explicit worker count
// (used by the parallelism ablation benchmark; 0 = pool default).
func DesignMatrixBoxesWith(samples []LabeledQuery, buckets []geom.Box, workers int) *linalg.Matrix {
	m, n := len(samples), len(buckets)
	vols := make([]float64, n)
	for j, b := range buckets {
		vols[j] = b.Volume()
	}
	a := linalg.NewMatrix(m, n)
	parallel.ForEachChunk(m, workers, 0, func(i int) {
		z := samples[i]
		row := a.Row(i)
		for j, b := range buckets {
			if vols[j] == 0 || !z.R.IntersectsBox(b) {
				continue
			}
			if z.R.ContainsBox(b) {
				row[j] = 1
				continue
			}
			row[j] = z.R.IntersectBoxVolume(b) / vols[j]
		}
	})
	return a
}

// DesignMatrixPoints assembles the discrete-distribution design matrix of
// Equation 7: A[i][j] = 1(Bⱼ ∈ Rᵢ) for point buckets Bⱼ. Large matrices
// are assembled in parallel (deterministically).
func DesignMatrixPoints(samples []LabeledQuery, points []geom.Point) *linalg.Matrix {
	return DesignMatrixPointsWith(samples, points, designWorkers(len(samples), len(points)))
}

// DesignMatrixPointsWith is DesignMatrixPoints with an explicit worker
// count (0 = pool default).
func DesignMatrixPointsWith(samples []LabeledQuery, points []geom.Point, workers int) *linalg.Matrix {
	m, n := len(samples), len(points)
	a := linalg.NewMatrix(m, n)
	parallel.ForEachChunk(m, workers, 0, func(i int) {
		z := samples[i]
		row := a.Row(i)
		for j, p := range points {
			if z.R.Contains(p) {
				row[j] = 1
			}
		}
	})
	return a
}

// Selectivities extracts the label vector s of a training sample.
func Selectivities(samples []LabeledQuery) []float64 {
	s := make([]float64, len(samples))
	for i, z := range samples {
		s[i] = z.Sel
	}
	return s
}
