package core

import (
	"runtime"
	"sync"

	"repro/internal/geom"
	"repro/internal/linalg"
)

// parallelThreshold is the m·n size above which design-matrix assembly
// fans out across CPUs. Rows are independent, so parallel assembly is
// bit-for-bit identical to sequential assembly.
const parallelThreshold = 1 << 16

// DesignMatrixBoxes assembles the weight-estimation design matrix of
// Equation 6: A[i][j] = vol(Bⱼ ∩ Rᵢ)/vol(Bⱼ) for box buckets Bⱼ and query
// ranges Rᵢ. Zero-volume buckets contribute zero columns. Large matrices
// are assembled in parallel (deterministically).
func DesignMatrixBoxes(samples []LabeledQuery, buckets []geom.Box) *linalg.Matrix {
	workers := 1
	if len(samples)*len(buckets) >= parallelThreshold {
		workers = runtime.GOMAXPROCS(0)
	}
	return DesignMatrixBoxesWith(samples, buckets, workers)
}

// DesignMatrixBoxesWith is DesignMatrixBoxes with an explicit worker count
// (used by the parallelism ablation benchmark).
func DesignMatrixBoxesWith(samples []LabeledQuery, buckets []geom.Box, workers int) *linalg.Matrix {
	m, n := len(samples), len(buckets)
	vols := make([]float64, n)
	for j, b := range buckets {
		vols[j] = b.Volume()
	}
	a := linalg.NewMatrix(m, n)
	fillRow := func(i int) {
		z := samples[i]
		row := a.Row(i)
		for j, b := range buckets {
			if vols[j] == 0 || !z.R.IntersectsBox(b) {
				continue
			}
			if z.R.ContainsBox(b) {
				row[j] = 1
				continue
			}
			row[j] = z.R.IntersectBoxVolume(b) / vols[j]
		}
	}
	forEachRow(m, workers, fillRow)
	return a
}

// DesignMatrixPoints assembles the discrete-distribution design matrix of
// Equation 7: A[i][j] = 1(Bⱼ ∈ Rᵢ) for point buckets Bⱼ. Large matrices
// are assembled in parallel (deterministically).
func DesignMatrixPoints(samples []LabeledQuery, points []geom.Point) *linalg.Matrix {
	m, n := len(samples), len(points)
	workers := 1
	if m*n >= parallelThreshold {
		workers = runtime.GOMAXPROCS(0)
	}
	a := linalg.NewMatrix(m, n)
	forEachRow(m, workers, func(i int) {
		z := samples[i]
		row := a.Row(i)
		for j, p := range points {
			if z.R.Contains(p) {
				row[j] = 1
			}
		}
	})
	return a
}

// forEachRow runs fn(i) for i in [0,m) across the given number of workers.
// Work is dealt in contiguous blocks so each worker touches disjoint cache
// lines of the output.
func forEachRow(m, workers int, fn func(i int)) {
	if workers <= 1 || m < 2 {
		for i := 0; i < m; i++ {
			fn(i)
		}
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, m)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Selectivities extracts the label vector s of a training sample.
func Selectivities(samples []LabeledQuery) []float64 {
	s := make([]float64, len(samples))
	for i, z := range samples {
		s[i] = z.Sel
	}
	return s
}
