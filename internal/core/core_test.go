package core

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// constModel predicts a constant selectivity.
type constModel float64

func (c constModel) Estimate(geom.Range) float64 { return float64(c) }
func (c constModel) NumBuckets() int             { return 1 }

func sampleSet() []LabeledQuery {
	return []LabeledQuery{
		{R: geom.UnitCube(2), Sel: 1.0},
		{R: geom.NewBox(geom.Point{0, 0}, geom.Point{0.5, 0.5}), Sel: 0.25},
		{R: geom.NewBox(geom.Point{0, 0}, geom.Point{0.1, 0.1}), Sel: 0.0},
	}
}

func TestLossFunctions(t *testing.T) {
	m := constModel(0.25)
	samples := sampleSet()
	wantMSE := (0.75*0.75 + 0 + 0.25*0.25) / 3
	if got := MSE(m, samples); math.Abs(got-wantMSE) > 1e-12 {
		t.Fatalf("MSE = %v, want %v", got, wantMSE)
	}
	if got := RMS(m, samples); math.Abs(got-math.Sqrt(wantMSE)) > 1e-12 {
		t.Fatalf("RMS = %v", got)
	}
	if got := LInf(m, samples); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("LInf = %v, want 0.75", got)
	}
}

func TestLossOnEmptySample(t *testing.T) {
	if MSE(constModel(0.5), nil) != 0 {
		t.Fatal("MSE of empty sample nonzero")
	}
	if LInf(constModel(0.5), nil) != 0 {
		t.Fatal("LInf of empty sample nonzero")
	}
}

func TestEstimates(t *testing.T) {
	got := Estimates(constModel(0.4), sampleSet())
	if len(got) != 3 {
		t.Fatalf("Estimates length %d", len(got))
	}
	for _, v := range got {
		if v != 0.4 {
			t.Fatalf("Estimates = %v", got)
		}
	}
}

func TestClamp01(t *testing.T) {
	cases := [][2]float64{{-0.5, 0}, {0, 0}, {0.3, 0.3}, {1, 1}, {1.7, 1}}
	for _, c := range cases {
		if got := Clamp01(c[0]); got != c[1] {
			t.Fatalf("Clamp01(%v) = %v, want %v", c[0], got, c[1])
		}
	}
}

func TestVCDimValues(t *testing.T) {
	if VCDimOrthogonal(2) != 4 || VCDimOrthogonal(5) != 10 {
		t.Fatal("orthogonal VC dims wrong")
	}
	if VCDimHalfspace(2) != 3 || VCDimHalfspace(7) != 8 {
		t.Fatal("halfspace VC dims wrong")
	}
	if VCDimBall(2) != 4 || VCDimBall(3) != 5 {
		t.Fatal("ball VC dims wrong")
	}
}

func TestFatShatteringMonotone(t *testing.T) {
	// fat(γ) decreases as γ grows, and grows with λ.
	if FatShattering(0.1, 4) <= FatShattering(0.2, 4) {
		t.Fatal("fat-shattering not decreasing in γ")
	}
	if FatShattering(0.1, 6) <= FatShattering(0.1, 4) {
		t.Fatal("fat-shattering not increasing in λ")
	}
	if !math.IsInf(FatShattering(0, 4), 1) {
		t.Fatal("fat-shattering at γ=0 should be infinite")
	}
}

func TestSampleComplexityShape(t *testing.T) {
	// More accuracy demands more samples.
	if SampleComplexity(0.05, 0.1, 4) <= SampleComplexity(0.1, 0.1, 4) {
		t.Fatal("sample complexity not decreasing in ε")
	}
	// Higher confidence demands more samples.
	if SampleComplexity(0.1, 0.01, 4) <= SampleComplexity(0.1, 0.1, 4) {
		t.Fatal("sample complexity not decreasing in δ")
	}
	// Higher dimension demands more samples: the 2d+3 exponent of
	// Theorem 2.1 for orthogonal ranges.
	if SampleComplexityOrthogonal(0.1, 0.1, 4) <= SampleComplexityOrthogonal(0.1, 0.1, 2) {
		t.Fatal("sample complexity not increasing in d")
	}
	// Orthogonal (λ=2d) needs more than halfspaces (λ=d+1) in d ≥ 2.
	if SampleComplexityOrthogonal(0.1, 0.1, 3) <= SampleComplexityHalfspace(0.1, 0.1, 3) {
		t.Fatal("orthogonal should dominate halfspace complexity for d=3")
	}
	if v := SampleComplexityBall(0.1, 0.1, 3); math.IsInf(v, 1) || v <= 0 {
		t.Fatalf("ball sample complexity = %v", v)
	}
	if !math.IsInf(SampleComplexity(0, 0.1, 2), 1) {
		t.Fatal("ε=0 should be infeasible")
	}
}

// Theorem 2.1's ε-exponent: log n₀(ε) / log(1/ε) approaches λ+3 as ε → 0.
func TestSampleComplexityExponent(t *testing.T) {
	lambda := 4
	e1, e2 := 1e-3, 1e-4
	n1 := SampleComplexity(e1, 0.1, lambda)
	n2 := SampleComplexity(e2, 0.1, lambda)
	slope := math.Log(n2/n1) / math.Log(e1/e2)
	want := float64(lambda + 3)
	// The polylog factors of the Õ(·) push the finite-ε slope slightly
	// above λ+3 (and never below it).
	if slope < want-1e-9 || slope > want+1.2 {
		t.Fatalf("empirical exponent %v, want within [%v, %v]", slope, want, want+1.2)
	}
}
