// Package modelio persists trained selectivity models: a database system
// trains in the optimizer's maintenance window and ships the model to
// every node that plans queries, so models need a stable interchange
// format. The format is a JSON envelope {version, type, payload}; all
// model types of this repository round-trip losslessly (float64 values are
// encoded in full precision).
package modelio

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/gmm"
	"repro/internal/hist"
	"repro/internal/isomer"
	"repro/internal/ptshist"
	"repro/internal/quicksel"
)

// Version is the current envelope version.
const Version = 1

// Typed load failures. A serving layer maps these to client errors (the
// uploaded bytes are bad) as opposed to transport or I/O faults:
//
//	ErrMalformed      — the bytes are not a JSON envelope
//	ErrUnknownVersion — envelope version this build does not speak
//	ErrUnknownType    — model type tag this build does not know
//	ErrInvalidModel   — well-formed envelope, structurally invalid model
//
// Match with errors.Is.
var (
	ErrMalformed      = errors.New("modelio: malformed envelope")
	ErrUnknownVersion = errors.New("modelio: unknown envelope version")
	ErrUnknownType    = errors.New("modelio: unknown model type")
	ErrInvalidModel   = errors.New("modelio: invalid model")
)

type envelope struct {
	Version int             `json:"version"`
	Type    string          `json:"type"`
	Payload json.RawMessage `json:"payload"`
}

// typeNameOf maps concrete model types to their envelope tags.
func typeNameOf(m core.Model) (string, bool) {
	switch m.(type) {
	case *hist.Model:
		return "quadhist", true
	case *ptshist.Model:
		return "ptshist", true
	case *quicksel.Model:
		return "quicksel", true
	case *isomer.Model:
		return "isomer", true
	case *gmm.Model:
		return "gaussmix", true
	}
	return "", false
}

// Save writes the model to w. Only the concrete model types of this
// repository are supported.
func Save(w io.Writer, m core.Model) error {
	name, ok := typeNameOf(m)
	if !ok {
		return fmt.Errorf("modelio: unsupported model type %T", m)
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("modelio: encode payload: %w", err)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(envelope{Version: Version, Type: name, Payload: payload})
}

// Load reads a model written by Save.
func Load(r io.Reader) (core.Model, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrMalformed, err)
	}
	if env.Version != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrUnknownVersion, env.Version, Version)
	}
	var m core.Model
	switch env.Type {
	case "quadhist":
		m = &hist.Model{}
	case "ptshist":
		m = &ptshist.Model{}
	case "quicksel":
		m = &quicksel.Model{}
	case "isomer":
		m = &isomer.Model{}
	case "gaussmix":
		m = &gmm.Model{}
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, env.Type)
	}
	if err := json.Unmarshal(env.Payload, m); err != nil {
		return nil, fmt.Errorf("%w: decode %s payload: %v", ErrMalformed, env.Type, err)
	}
	if err := validate(m); err != nil {
		return nil, err
	}
	return m, nil
}

// validate performs structural sanity checks so a corrupted file fails at
// load time rather than at estimation time.
func validate(m core.Model) error {
	checkWeights := func(n int, w []float64) error {
		if len(w) != n {
			return fmt.Errorf("%w: %d buckets but %d weights", ErrInvalidModel, n, len(w))
		}
		sum := 0.0
		for _, v := range w {
			if v < -1e-9 {
				return fmt.Errorf("%w: negative weight %v", ErrInvalidModel, v)
			}
			sum += v
		}
		if n > 0 && (sum < 0.99 || sum > 1.01) {
			return fmt.Errorf("%w: weights sum to %v", ErrInvalidModel, sum)
		}
		return nil
	}
	switch t := m.(type) {
	case *hist.Model:
		return checkWeights(len(t.Buckets), t.Weights)
	case *ptshist.Model:
		return checkWeights(len(t.Points), t.Weights)
	case *quicksel.Model:
		return checkWeights(len(t.Buckets), t.Weights)
	case *isomer.Model:
		return checkWeights(len(t.Buckets), t.Weights)
	case *gmm.Model:
		if err := checkWeights(len(t.Components), t.Weights); err != nil {
			return err
		}
		for _, c := range t.Components {
			if c.Sigma <= 0 {
				return fmt.Errorf("%w: non-positive component sigma %v", ErrInvalidModel, c.Sigma)
			}
		}
		return nil
	}
	return nil
}
