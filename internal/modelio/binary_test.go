package modelio

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/gmm"
	"repro/internal/hist"
	"repro/internal/isomer"
	"repro/internal/ptshist"
	"repro/internal/quicksel"
)

// gridModel builds a k×k quadhist-shaped model with deterministic
// normalized weights, large enough to carry a BVH when k*k >= the
// indexing threshold.
func gridModel(k int) *hist.Model {
	m := &hist.Model{}
	total := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			lo := geom.Point{float64(i) / float64(k), float64(j) / float64(k)}
			hi := geom.Point{float64(i+1) / float64(k), float64(j+1) / float64(k)}
			m.Buckets = append(m.Buckets, geom.Box{Lo: lo, Hi: hi})
			w := 1 + float64((i*31+j*17)%7)
			m.Weights = append(m.Weights, w)
			total += w
		}
	}
	for i := range m.Weights {
		m.Weights[i] /= total
	}
	return m
}

func snapshot(t *testing.T, m core.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveBinary(&buf, m); err != nil {
		t.Fatalf("SaveBinary: %v", err)
	}
	return buf.Bytes()
}

func randQueries(n int) []geom.Range {
	rng := rand.New(rand.NewSource(7))
	out := make([]geom.Range, n)
	for i := range out {
		lo := geom.Point{rng.Float64() * 0.8, rng.Float64() * 0.8}
		out[i] = geom.Box{Lo: lo, Hi: geom.Point{lo[0] + 0.2*rng.Float64(), lo[1] + 0.2*rng.Float64()}}
	}
	return out
}

// TestBinaryRoundTripEstimates saves and loads every model family and
// checks estimates are bit-identical to the original model's.
func TestBinaryRoundTripEstimates(t *testing.T) {
	queries := randQueries(64)

	check := func(t *testing.T, orig core.Model) {
		t.Helper()
		got, err := LoadBinary(snapshot(t, orig))
		if err != nil {
			t.Fatalf("LoadBinary: %v", err)
		}
		for qi, q := range queries {
			a, b := orig.Estimate(q), got.Estimate(q)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("query %d: original %v, loaded %v", qi, a, b)
			}
		}
	}

	t.Run("quadhist small", func(t *testing.T) { check(t, gridModel(4)) })
	t.Run("quadhist indexed", func(t *testing.T) { check(t, gridModel(32)) })
	t.Run("quicksel", func(t *testing.T) {
		g := gridModel(16)
		check(t, &quicksel.Model{Buckets: g.Buckets, Weights: g.Weights})
	})
	t.Run("isomer", func(t *testing.T) {
		g := gridModel(16)
		check(t, &isomer.Model{Buckets: g.Buckets, Weights: g.Weights})
	})
	t.Run("ptshist", func(t *testing.T) {
		rng := rand.New(rand.NewSource(3))
		m := &ptshist.Model{}
		for i := 0; i < 100; i++ {
			m.Points = append(m.Points, geom.Point{rng.Float64(), rng.Float64()})
			m.Weights = append(m.Weights, 0.01)
		}
		check(t, m)
	})
	t.Run("gaussmix", func(t *testing.T) {
		rng := rand.New(rand.NewSource(5))
		m := &gmm.Model{}
		for i := 0; i < 8; i++ {
			m.Components = append(m.Components, gmm.Component{
				Mean:  geom.Point{rng.Float64(), rng.Float64()},
				Sigma: 0.05 + 0.1*rng.Float64(),
			})
			m.Weights = append(m.Weights, 0.125)
		}
		check(t, m)
	})
}

// TestBinaryLoadSeedsIndex checks the headline contract: a loaded
// above-threshold model already has its BVH, and Accelerate after load
// does not rebuild it.
func TestBinaryLoadSeedsIndex(t *testing.T) {
	orig := gridModel(32) // 1024 buckets, well above IndexThreshold
	data := snapshot(t, orig)
	m, err := LoadBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	hm := m.(*hist.Model)
	tree := hm.IndexTree()
	if tree == nil {
		t.Fatal("loaded model has no seeded index")
	}
	core.Accelerate(m)
	if hm.IndexTree() != tree {
		t.Fatal("Accelerate after load rebuilt the index")
	}
	if tree.Len() != len(hm.Buckets) {
		t.Fatalf("tree over %d buckets, model has %d", tree.Len(), len(hm.Buckets))
	}
}

// TestBinaryCorruption flips bytes across the snapshot and requires every
// corruption to be caught by a checksum or structural check — never a
// panic, never a silently-wrong model.
func TestBinaryCorruption(t *testing.T) {
	data := snapshot(t, gridModel(16))
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		b := append([]byte(nil), data...)
		pos := rng.Intn(len(b))
		b[pos] ^= 1 << uint(rng.Intn(8))
		m, err := LoadBinary(b)
		if err == nil {
			// A flipped padding byte inside a section would change its
			// CRC, so a successful load means the flip landed in dead
			// header space; the model must still validate.
			if verr := validate(m); verr != nil {
				t.Fatalf("flip at %d: loaded invalid model: %v", pos, verr)
			}
			continue
		}
		if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrUnknownVersion) &&
			!errors.Is(err, ErrUnknownType) && !errors.Is(err, ErrInvalidModel) {
			t.Fatalf("flip at %d: untyped error %v", pos, err)
		}
	}

	t.Run("truncations", func(t *testing.T) {
		for n := 0; n < len(data); n += 97 {
			if _, err := LoadBinary(data[:n]); err == nil {
				t.Fatalf("truncation to %d bytes loaded successfully", n)
			}
		}
	})
}

// TestLoadAnySniffsFormat checks both formats load through LoadAny.
func TestLoadAnySniffsFormat(t *testing.T) {
	orig := gridModel(8)

	var jbuf bytes.Buffer
	if err := Save(&jbuf, orig); err != nil {
		t.Fatal(err)
	}
	jm, err := LoadAny(bytes.NewReader(jbuf.Bytes()))
	if err != nil {
		t.Fatalf("LoadAny(json): %v", err)
	}
	bm, err := LoadAny(bytes.NewReader(snapshot(t, orig)))
	if err != nil {
		t.Fatalf("LoadAny(binary): %v", err)
	}
	q := geom.Box{Lo: geom.Point{0.1, 0.1}, Hi: geom.Point{0.6, 0.7}}
	if a, b := jm.Estimate(q), bm.Estimate(q); math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("formats disagree: %v vs %v", a, b)
	}
	if _, err := LoadAnyBytes(jbuf.Bytes()); err != nil {
		t.Fatalf("LoadAnyBytes(json): %v", err)
	}
}
