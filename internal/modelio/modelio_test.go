package modelio

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/gmm"
	"repro/internal/hist"
	"repro/internal/isomer"
	"repro/internal/ptshist"
	"repro/internal/quicksel"
	"repro/internal/workload"
)

func fixture(t *testing.T) ([]core.LabeledQuery, []core.LabeledQuery) {
	t.Helper()
	ds := dataset.Power(4000, 1).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 42)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	return g.TrainTest(spec, 60, 80)
}

func roundTrip(t *testing.T, m core.Model) core.Model {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRoundTripAllModelTypes(t *testing.T) {
	train, test := fixture(t)
	trainers := []core.Trainer{
		hist.New(2, 200),
		ptshist.New(2, 200, 3),
		quicksel.New(2, 5),
		isomer.New(2),
		gmm.New(2, 30, 7),
	}
	for _, tr := range trainers {
		m, err := tr.Train(train)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		got := roundTrip(t, m)
		// Identical estimates on every test query.
		for _, z := range test {
			a, b := m.Estimate(z.R), got.Estimate(z.R)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("%s: estimate drift after round trip: %v vs %v", tr.Name(), a, b)
			}
		}
		if m.NumBuckets() != got.NumBuckets() {
			t.Fatalf("%s: bucket count drift", tr.Name())
		}
	}
}

func TestRoundTripNonBoxQueries(t *testing.T) {
	train, _ := fixture(t)
	m, err := ptshist.New(2, 100, 3).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, m)
	queries := []geom.Range{
		geom.NewBall(geom.Point{0.3, 0.3}, 0.2),
		geom.NewHalfspace(geom.Point{1, -1}, 0),
	}
	for _, q := range queries {
		if math.Abs(m.Estimate(q)-got.Estimate(q)) > 1e-12 {
			t.Fatalf("estimate drift for %v", q)
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"garbage", "not json"},
		{"bad version", `{"version":99,"type":"quadhist","payload":{}}`},
		{"unknown type", `{"version":1,"type":"neuralnet","payload":{}}`},
		{"weight mismatch", `{"version":1,"type":"ptshist","payload":{"Points":[[0.5,0.5]],"Weights":[0.5,0.5]}}`},
		{"negative weight", `{"version":1,"type":"ptshist","payload":{"Points":[[0.5,0.5],[0.1,0.1]],"Weights":[1.5,-0.5]}}`},
		{"weights not normalized", `{"version":1,"type":"ptshist","payload":{"Points":[[0.5,0.5]],"Weights":[0.2]}}`},
		{"bad sigma", `{"version":1,"type":"gaussmix","payload":{"Components":[{"Mean":[0.5],"Sigma":0}],"Weights":[1]}}`},
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c.input)); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
}

func TestSaveRejectsForeignModel(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, fakeModel{}); err == nil {
		t.Fatal("foreign model type accepted")
	}
}

type fakeModel struct{}

func (fakeModel) Estimate(geom.Range) float64 { return 0 }
func (fakeModel) NumBuckets() int             { return 0 }

func TestLoadTypedErrors(t *testing.T) {
	// A valid envelope, then truncated at various points: every prefix
	// must fail as malformed, never panic, never succeed.
	var buf bytes.Buffer
	train, _ := fixture(t)
	m, err := ptshist.New(2, 50, 3).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	for _, cut := range []int{0, 1, len(full) / 2, len(full) - 2} {
		_, err := Load(strings.NewReader(full[:cut]))
		if !errors.Is(err, ErrMalformed) {
			t.Fatalf("truncated at %d: got %v, want ErrMalformed", cut, err)
		}
	}

	cases := []struct {
		name  string
		input string
		want  error
	}{
		{"future version", `{"version":2,"type":"quadhist","payload":{}}`, ErrUnknownVersion},
		{"zero version", `{"version":0,"type":"quadhist","payload":{}}`, ErrUnknownVersion},
		{"unknown type", `{"version":1,"type":"neuralnet","payload":{}}`, ErrUnknownType},
		{"bad payload json", `{"version":1,"type":"quadhist","payload":"nope"}`, ErrMalformed},
		{"invalid weights", `{"version":1,"type":"ptshist","payload":{"Points":[[0.5,0.5]],"Weights":[0.2]}}`, ErrInvalidModel},
	}
	for _, c := range cases {
		_, err := Load(strings.NewReader(c.input))
		if !errors.Is(err, c.want) {
			t.Fatalf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
}
