package modelio

// Binary snapshot format (DESIGN.md §15). The JSON envelope is the
// interchange format; the binary snapshot is the replica cold-start
// fast-path: a versioned container (magic + CRC + section table) whose
// sections store the model's arrays in exactly the flat little-endian
// layouts the estimator consumes, including the prebuilt BVH index.
// Loading therefore decodes weights and bucket corners directly into the
// structure-of-arrays buffers the tree walks read — on little-endian
// machines as zero-copy views over the file bytes — and seeds the model's
// index from the persisted tree, so core.Accelerate after LoadBinary
// re-derives nothing: no bucket sort, no recursion, no weight sweep.
//
// Layout (all integers little-endian):
//
//	off  0  magic "SELSNP01"
//	off  8  u16 version | u8 model type tag | u8 section count | u32 zero
//	off 16  count × section entry: u32 id | u32 zero | u64 off | u64 len | u32 crc32 | u32 zero
//	then    u32 crc32 of everything above | u32 zero
//	then    sections, each 8-byte aligned, at the table's absolute offsets
//
// Section ids: BOXS (u32 dim | u32 zero | u64 count | count·dim f64 lo |
// count·dim f64 hi), WGTS (u64 count | count f64), PNTS (like BOXS with
// one coord block), GMMC (u32 dim | u32 zero | u64 count | means | sigmas),
// BVHT (u32 dim | u32 zero | u64 nodes | u64 leafIdx len | nlo | nhi |
// left | right | loff | lcnt | leafIdx | pad | invVols | wsums). Every
// f64 block begins 8-byte aligned so loads can alias the file buffer.
// CRC32 (IEEE) is checked per section and over the header before any
// section is decoded; failures wrap ErrMalformed. Structural problems in
// a persisted tree (cyclic links, out-of-range leaf windows) are caught
// by bvh.FromRaw and wrap ErrInvalidModel.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"

	"repro/internal/bvh"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/gmm"
	"repro/internal/hist"
	"repro/internal/isomer"
	"repro/internal/ptshist"
	"repro/internal/quicksel"
)

// BinaryMagic is the 8-byte snapshot signature; LoadAny sniffs it to
// dispatch between the binary and JSON loaders.
const BinaryMagic = "SELSNP01"

// BinaryVersion is the current snapshot container version.
const BinaryVersion = 1

// Model type tags. These are wire constants: never renumber.
const (
	tagQuadhist = 1
	tagPtshist  = 2
	tagQuicksel = 3
	tagIsomer   = 4
	tagGaussmix = 5
)

// Section ids. Wire constants: never renumber.
const (
	secBoxes = 1 // bucket corners, SoA: all los then all his
	secWgts  = 2 // model weights
	secPts   = 3 // point coordinates (ptshist)
	secGmm   = 4 // component means + sigmas (gaussmix)
	secBVH   = 5 // prebuilt BVH structure arrays
)

// indexedModel is the box-bucketed model surface the snapshot writer and
// loader use to persist and seed a prebuilt BVH.
type indexedModel interface {
	IndexTree() *bvh.Tree
	SeedIndex(*bvh.Tree)
}

// nativeLE reports whether this machine stores floats little-endian, the
// precondition for aliasing f64 sections instead of copying them.
var nativeLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// ---- writer ----

type binWriter struct {
	buf  []byte
	secs []struct {
		id     uint32
		off, n uint64
		crc    uint32
	}
}

func (w *binWriter) pad8() {
	for len(w.buf)%8 != 0 {
		w.buf = append(w.buf, 0)
	}
}

func (w *binWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *binWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

func (w *binWriter) f64s(vs []float64) {
	off := len(w.buf)
	w.buf = append(w.buf, make([]byte, 8*len(vs))...)
	for i, v := range vs {
		binary.LittleEndian.PutUint64(w.buf[off+8*i:], math.Float64bits(v))
	}
}

func (w *binWriter) i32s(vs []int32) {
	off := len(w.buf)
	w.buf = append(w.buf, make([]byte, 4*len(vs))...)
	for i, v := range vs {
		binary.LittleEndian.PutUint32(w.buf[off+4*i:], uint32(v))
	}
}

// section runs body to append one section's bytes and records its table
// entry.
func (w *binWriter) section(id uint32, body func()) {
	w.pad8()
	start := len(w.buf)
	body()
	w.secs = append(w.secs, struct {
		id     uint32
		off, n uint64
		crc    uint32
	}{id, uint64(start), uint64(len(w.buf) - start), crc32.ChecksumIEEE(w.buf[start:])})
}

// flatCorners flattens bucket corners into SoA lo/hi arrays.
func flatCorners(buckets []geom.Box) (lo, hi []float64, dim int) {
	if len(buckets) == 0 {
		return nil, nil, 0
	}
	dim = buckets[0].Dim()
	lo = make([]float64, 0, len(buckets)*dim)
	hi = make([]float64, 0, len(buckets)*dim)
	for _, b := range buckets {
		lo = append(lo, b.Lo...)
		hi = append(hi, b.Hi...)
	}
	return lo, hi, dim
}

// SaveBinary writes the model as a binary snapshot. The model is
// accelerated first (core.Accelerate), so box-bucketed models at or above
// the indexing threshold persist their BVH and replicas skip the build on
// load.
func SaveBinary(w io.Writer, m core.Model) error {
	tag := 0
	switch m.(type) {
	case *hist.Model:
		tag = tagQuadhist
	case *ptshist.Model:
		tag = tagPtshist
	case *quicksel.Model:
		tag = tagQuicksel
	case *isomer.Model:
		tag = tagIsomer
	case *gmm.Model:
		tag = tagGaussmix
	default:
		return fmt.Errorf("modelio: unsupported model type %T", m)
	}
	core.Accelerate(m)

	var bw binWriter
	writeBoxes := func(buckets []geom.Box, weights []float64, im indexedModel) {
		lo, hi, dim := flatCorners(buckets)
		bw.section(secBoxes, func() {
			bw.u32(uint32(dim))
			bw.u32(0)
			bw.u64(uint64(len(buckets)))
			bw.f64s(lo)
			bw.f64s(hi)
		})
		bw.section(secWgts, func() {
			bw.u64(uint64(len(weights)))
			bw.f64s(weights)
		})
		if t := im.IndexTree(); t != nil {
			raw := t.Raw()
			bw.section(secBVH, func() {
				bw.u32(uint32(raw.Dim))
				bw.u32(0)
				bw.u64(uint64(len(raw.Left)))
				bw.u64(uint64(len(raw.LeafIdx)))
				bw.f64s(raw.NLo)
				bw.f64s(raw.NHi)
				bw.i32s(raw.Left)
				bw.i32s(raw.Right)
				bw.i32s(raw.LOff)
				bw.i32s(raw.LCnt)
				bw.i32s(raw.LeafIdx)
				bw.pad8()
				bw.f64s(raw.InvVols)
				bw.f64s(raw.WSums)
			})
		}
	}

	// Reserve the fixed header; section offsets are absolute, so the
	// header size must be known up front. Section count is patched below.
	const maxSecs = 3
	headerLen := 16 + maxSecs*32 + 8
	bw.buf = make([]byte, headerLen)

	switch t := m.(type) {
	case *hist.Model:
		writeBoxes(t.Buckets, t.Weights, t)
	case *quicksel.Model:
		writeBoxes(t.Buckets, t.Weights, t)
	case *isomer.Model:
		writeBoxes(t.Buckets, t.Weights, t)
	case *ptshist.Model:
		dim := 0
		if len(t.Points) > 0 {
			dim = len(t.Points[0])
		}
		bw.section(secPts, func() {
			bw.u32(uint32(dim))
			bw.u32(0)
			bw.u64(uint64(len(t.Points)))
			for _, p := range t.Points {
				bw.f64s(p)
			}
		})
		bw.section(secWgts, func() {
			bw.u64(uint64(len(t.Weights)))
			bw.f64s(t.Weights)
		})
	case *gmm.Model:
		dim := 0
		if len(t.Components) > 0 {
			dim = len(t.Components[0].Mean)
		}
		bw.section(secGmm, func() {
			bw.u32(uint32(dim))
			bw.u32(0)
			bw.u64(uint64(len(t.Components)))
			for _, c := range t.Components {
				bw.f64s(c.Mean)
			}
			for _, c := range t.Components {
				bw.f64s([]float64{c.Sigma})
			}
		})
		bw.section(secWgts, func() {
			bw.u64(uint64(len(t.Weights)))
			bw.f64s(t.Weights)
		})
	}

	// Fill the header in place.
	h := bw.buf[:headerLen]
	copy(h[0:8], BinaryMagic)
	binary.LittleEndian.PutUint16(h[8:], BinaryVersion)
	h[10] = byte(tag)
	h[11] = byte(len(bw.secs))
	for i, s := range bw.secs {
		e := h[16+32*i:]
		binary.LittleEndian.PutUint32(e[0:], s.id)
		binary.LittleEndian.PutUint64(e[8:], s.off)
		binary.LittleEndian.PutUint64(e[16:], s.n)
		binary.LittleEndian.PutUint32(e[24:], s.crc)
	}
	crcOff := 16 + maxSecs*32
	binary.LittleEndian.PutUint32(h[crcOff:], crc32.ChecksumIEEE(h[:crcOff]))

	_, err := w.Write(bw.buf)
	return err
}

// ---- reader ----

// binReader is a bounds-checked cursor over one section's bytes.
type binReader struct {
	b    []byte
	base int // absolute offset of b[0] in the snapshot, for alignment
	i    int
}

func (r *binReader) u32() (uint32, error) {
	if len(r.b)-r.i < 4 {
		return 0, fmt.Errorf("%w: truncated section", ErrMalformed)
	}
	v := binary.LittleEndian.Uint32(r.b[r.i:])
	r.i += 4
	return v, nil
}

func (r *binReader) u64() (uint64, error) {
	if len(r.b)-r.i < 8 {
		return 0, fmt.Errorf("%w: truncated section", ErrMalformed)
	}
	v := binary.LittleEndian.Uint64(r.b[r.i:])
	r.i += 8
	return v, nil
}

// count validates an element count against the remaining section bytes
// (elemSize bytes each) before anything is allocated.
func (r *binReader) count(n uint64, elemSize int) (int, error) {
	if n > uint64((len(r.b)-r.i)/elemSize) {
		return 0, fmt.Errorf("%w: count exceeds section size", ErrMalformed)
	}
	return int(n), nil
}

// f64s reads n float64s. On a little-endian machine with the section
// properly aligned this is a zero-copy view over the snapshot bytes;
// otherwise it decodes into a fresh slice.
func (r *binReader) f64s(n int) ([]float64, error) {
	if n > (len(r.b)-r.i)/8 {
		return nil, fmt.Errorf("%w: truncated float block", ErrMalformed)
	}
	raw := r.b[r.i : r.i+8*n]
	r.i += 8 * n
	if n == 0 {
		return nil, nil
	}
	if nativeLE && (uintptr(unsafe.Pointer(&raw[0])))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&raw[0])), n), nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out, nil
}

// i32s reads n int32s, zero-copy when possible.
func (r *binReader) i32s(n int) ([]int32, error) {
	if n > (len(r.b)-r.i)/4 {
		return nil, fmt.Errorf("%w: truncated int block", ErrMalformed)
	}
	raw := r.b[r.i : r.i+4*n]
	r.i += 4 * n
	if n == 0 {
		return nil, nil
	}
	if nativeLE && (uintptr(unsafe.Pointer(&raw[0])))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&raw[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

func (r *binReader) pad8() {
	abs := r.base + r.i
	for abs%8 != 0 && r.i < len(r.b) {
		abs++
		r.i++
	}
}

// boxViews builds []geom.Box whose corners alias windows of the flat
// lo/hi arrays — the same aliasing the BVH builder's SoA layout uses.
func boxViews(lo, hi []float64, m, d int) []geom.Box {
	boxes := make([]geom.Box, m)
	for j := 0; j < m; j++ {
		boxes[j] = geom.Box{
			Lo: geom.Point(lo[j*d : (j+1)*d : (j+1)*d]),
			Hi: geom.Point(hi[j*d : (j+1)*d : (j+1)*d]),
		}
	}
	return boxes
}

// IsBinary reports whether data begins with the binary snapshot magic.
func IsBinary(data []byte) bool {
	return len(data) >= len(BinaryMagic) && string(data[:len(BinaryMagic)]) == BinaryMagic
}

// LoadBinary reads a model written by SaveBinary. On little-endian
// machines the model's float arrays are views over data, which therefore
// must not be mutated afterwards. Checksum and structural failures wrap
// ErrMalformed; a well-formed container holding an invalid model wraps
// ErrInvalidModel.
func LoadBinary(data []byte) (core.Model, error) {
	const maxSecs = 3
	const headerLen = 16 + maxSecs*32 + 8
	if len(data) < headerLen || !IsBinary(data) {
		return nil, fmt.Errorf("%w: not a binary snapshot", ErrMalformed)
	}
	if v := binary.LittleEndian.Uint16(data[8:]); v != BinaryVersion {
		return nil, fmt.Errorf("%w: snapshot version %d, want %d", ErrUnknownVersion, v, BinaryVersion)
	}
	tag := int(data[10])
	nsec := int(data[11])
	if nsec > maxSecs {
		return nil, fmt.Errorf("%w: %d sections", ErrMalformed, nsec)
	}
	crcOff := 16 + maxSecs*32
	if crc32.ChecksumIEEE(data[:crcOff]) != binary.LittleEndian.Uint32(data[crcOff:]) {
		return nil, fmt.Errorf("%w: header checksum mismatch", ErrMalformed)
	}

	secs := map[uint32]*binReader{}
	for i := 0; i < nsec; i++ {
		e := data[16+32*i:]
		id := binary.LittleEndian.Uint32(e[0:])
		off := binary.LittleEndian.Uint64(e[8:])
		n := binary.LittleEndian.Uint64(e[16:])
		crc := binary.LittleEndian.Uint32(e[24:])
		if off > uint64(len(data)) || n > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: section %d out of range", ErrMalformed, id)
		}
		sec := data[off : off+n]
		if crc32.ChecksumIEEE(sec) != crc {
			return nil, fmt.Errorf("%w: section %d checksum mismatch", ErrMalformed, id)
		}
		secs[id] = &binReader{b: sec, base: int(off)}
	}

	readWeights := func() ([]float64, error) {
		r := secs[secWgts]
		if r == nil {
			return nil, fmt.Errorf("%w: missing weights section", ErrMalformed)
		}
		n64, err := r.u64()
		if err != nil {
			return nil, err
		}
		n, err := r.count(n64, 8)
		if err != nil {
			return nil, err
		}
		return r.f64s(n)
	}

	// readBoxes decodes BOXS into aliased buckets plus the flat corner
	// arrays (handed to bvh.FromRaw so the tree shares them too).
	readBoxes := func() (buckets []geom.Box, lo, hi []float64, dim int, err error) {
		r := secs[secBoxes]
		if r == nil {
			return nil, nil, nil, 0, fmt.Errorf("%w: missing boxes section", ErrMalformed)
		}
		d32, err := r.u32()
		if err != nil {
			return nil, nil, nil, 0, err
		}
		if _, err := r.u32(); err != nil {
			return nil, nil, nil, 0, err
		}
		n64, err := r.u64()
		if err != nil {
			return nil, nil, nil, 0, err
		}
		d := int(d32)
		if d <= 0 || d > 1<<12 {
			return nil, nil, nil, 0, fmt.Errorf("%w: snapshot dimension %d", ErrMalformed, d)
		}
		m, err := r.count(n64, 16*d)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		if lo, err = r.f64s(m * d); err != nil {
			return nil, nil, nil, 0, err
		}
		if hi, err = r.f64s(m * d); err != nil {
			return nil, nil, nil, 0, err
		}
		return boxViews(lo, hi, m, d), lo, hi, d, nil
	}

	// readTree seeds a persisted BVH, validated by bvh.FromRaw.
	readTree := func(im indexedModel, buckets []geom.Box, weights, lo, hi []float64) error {
		r := secs[secBVH]
		if r == nil {
			return nil // snapshot of a below-threshold model: no index
		}
		var raw bvh.Raw
		d32, err := r.u32()
		if err != nil {
			return err
		}
		if _, err := r.u32(); err != nil {
			return err
		}
		nodes64, err := r.u64()
		if err != nil {
			return err
		}
		leaf64, err := r.u64()
		if err != nil {
			return err
		}
		raw.Dim = int(d32)
		// A tree over n buckets has at most 2n-1 nodes; each node costs
		// at least 16 bytes of node-box coords here, which bounds the
		// allocation by the section length.
		nodes, err := r.count(nodes64, 16)
		if err != nil {
			return err
		}
		nleaf, err := r.count(leaf64, 4)
		if err != nil {
			return err
		}
		if raw.NLo, err = r.f64s(nodes * raw.Dim); err != nil {
			return err
		}
		if raw.NHi, err = r.f64s(nodes * raw.Dim); err != nil {
			return err
		}
		if raw.Left, err = r.i32s(nodes); err != nil {
			return err
		}
		if raw.Right, err = r.i32s(nodes); err != nil {
			return err
		}
		if raw.LOff, err = r.i32s(nodes); err != nil {
			return err
		}
		if raw.LCnt, err = r.i32s(nodes); err != nil {
			return err
		}
		if raw.LeafIdx, err = r.i32s(nleaf); err != nil {
			return err
		}
		r.pad8()
		if raw.InvVols, err = r.f64s(len(buckets)); err != nil {
			return err
		}
		if raw.WSums, err = r.f64s(nodes); err != nil {
			return err
		}
		t, err := bvh.FromRaw(raw, buckets, weights, lo, hi)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidModel, err)
		}
		im.SeedIndex(t)
		return nil
	}

	var m core.Model
	switch tag {
	case tagQuadhist, tagQuicksel, tagIsomer:
		buckets, lo, hi, _, err := readBoxes()
		if err != nil {
			return nil, err
		}
		weights, err := readWeights()
		if err != nil {
			return nil, err
		}
		var im indexedModel
		switch tag {
		case tagQuadhist:
			hm := &hist.Model{Buckets: buckets, Weights: weights}
			m, im = hm, hm
		case tagQuicksel:
			qm := &quicksel.Model{Buckets: buckets, Weights: weights}
			m, im = qm, qm
		default:
			om := &isomer.Model{Buckets: buckets, Weights: weights}
			m, im = om, om
		}
		if err := validate(m); err != nil {
			return nil, err
		}
		if err := readTree(im, buckets, weights, lo, hi); err != nil {
			return nil, err
		}
	case tagPtshist:
		r := secs[secPts]
		if r == nil {
			return nil, fmt.Errorf("%w: missing points section", ErrMalformed)
		}
		d32, err := r.u32()
		if err != nil {
			return nil, err
		}
		if _, err := r.u32(); err != nil {
			return nil, err
		}
		n64, err := r.u64()
		if err != nil {
			return nil, err
		}
		d := int(d32)
		if d <= 0 || d > 1<<12 {
			return nil, fmt.Errorf("%w: snapshot dimension %d", ErrMalformed, d)
		}
		n, err := r.count(n64, 8*d)
		if err != nil {
			return nil, err
		}
		coords, err := r.f64s(n * d)
		if err != nil {
			return nil, err
		}
		pts := make([]geom.Point, n)
		for j := range pts {
			pts[j] = geom.Point(coords[j*d : (j+1)*d : (j+1)*d])
		}
		weights, err := readWeights()
		if err != nil {
			return nil, err
		}
		m = &ptshist.Model{Points: pts, Weights: weights}
		if err := validate(m); err != nil {
			return nil, err
		}
	case tagGaussmix:
		r := secs[secGmm]
		if r == nil {
			return nil, fmt.Errorf("%w: missing components section", ErrMalformed)
		}
		d32, err := r.u32()
		if err != nil {
			return nil, err
		}
		if _, err := r.u32(); err != nil {
			return nil, err
		}
		n64, err := r.u64()
		if err != nil {
			return nil, err
		}
		d := int(d32)
		if d <= 0 || d > 1<<12 {
			return nil, fmt.Errorf("%w: snapshot dimension %d", ErrMalformed, d)
		}
		n, err := r.count(n64, 8*d+8)
		if err != nil {
			return nil, err
		}
		means, err := r.f64s(n * d)
		if err != nil {
			return nil, err
		}
		sigmas, err := r.f64s(n)
		if err != nil {
			return nil, err
		}
		comps := make([]gmm.Component, n)
		for k := range comps {
			comps[k] = gmm.Component{Mean: geom.Point(means[k*d : (k+1)*d : (k+1)*d]), Sigma: sigmas[k]}
		}
		weights, err := readWeights()
		if err != nil {
			return nil, err
		}
		m = &gmm.Model{Components: comps, Weights: weights}
		if err := validate(m); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: binary tag %d", ErrUnknownType, tag)
	}
	return m, nil
}

// LoadAny reads a model in either format, sniffing the binary magic.
func LoadAny(r io.Reader) (core.Model, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(BinaryMagic))
	if err == nil && IsBinary(head) {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("%w: read: %v", ErrMalformed, err)
		}
		return LoadBinary(data)
	}
	return Load(br)
}

// LoadAnyBytes is LoadAny over an in-memory snapshot, avoiding the copy
// for callers that already hold the bytes.
func LoadAnyBytes(data []byte) (core.Model, error) {
	if IsBinary(data) {
		return LoadBinary(data)
	}
	return Load(bytes.NewReader(data))
}
