package online_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/hist"
	"repro/internal/online"
	"repro/internal/quicksel"
	"repro/internal/rng"
)

// gridModel builds a k×k QUADHIST model directly (deterministic weights),
// large enough for the BVH-indexed coverage path when k*k exceeds the
// threshold.
func gridModel(k int) *hist.Model {
	n := k * k
	buckets := make([]geom.Box, 0, n)
	weights := make([]float64, 0, n)
	step := 1.0 / float64(k)
	total := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			lo := geom.Point{float64(i) * step, float64(j) * step}
			hi := geom.Point{lo[0] + step, lo[1] + step}
			buckets = append(buckets, geom.Box{Lo: lo, Hi: hi})
			w := 1 + math.Sin(float64(i*31+j))*0.5
			weights = append(weights, w)
			total += w
		}
	}
	for i := range weights {
		weights[i] /= total
	}
	return &hist.Model{Buckets: buckets, Weights: weights}
}

func randomBox(r *rng.RNG) geom.Box {
	lo := make(geom.Point, 2)
	hi := make(geom.Point, 2)
	for j := 0; j < 2; j++ {
		a, b := r.Float64(), r.Float64()
		lo[j], hi[j] = min(a, b), max(a, b)
	}
	return geom.Box{Lo: lo, Hi: hi}
}

func sum(w []float64) float64 {
	s := 0.0
	for _, v := range w {
		s += v
	}
	return s
}

// TestUpdateReducesError: one update must move the prediction toward the
// observed selectivity, for both rules, without overshooting past it.
func TestUpdateReducesError(t *testing.T) {
	for _, rule := range []online.Rule{online.RuleGradient, online.RuleMultiplicative} {
		t.Run(rule.String(), func(t *testing.T) {
			m := gridModel(20)
			u, ok := online.ForModel(m, online.Options{Rule: rule, Rate: 0.5})
			if !ok {
				t.Fatal("ForModel rejected a hist model")
			}
			q := geom.Box{Lo: geom.Point{0.1, 0.1}, Hi: geom.Point{0.6, 0.6}}
			before := m.Estimate(q)
			target := core.Clamp01(before + 0.2)
			nm, st := u.Apply([]core.LabeledQuery{{R: q, Sel: target}})
			if nm == nil || st.Applied != 1 {
				t.Fatalf("update not applied: model=%v stats=%+v", nm, st)
			}
			after := nm.Estimate(q)
			if math.Abs(after-target) >= math.Abs(before-target) {
				t.Fatalf("rule %v did not reduce error: before=%v after=%v target=%v",
					rule, before, after, target)
			}
			if st.Drift <= 0 {
				t.Fatalf("applied update reported zero drift")
			}
		})
	}
}

// TestRepeatedFeedbackConverges: hammering the same observation must drive
// the prediction to it (the Kaczmarz fixed point), for both rules.
func TestRepeatedFeedbackConverges(t *testing.T) {
	for _, rule := range []online.Rule{online.RuleGradient, online.RuleMultiplicative} {
		t.Run(rule.String(), func(t *testing.T) {
			m := gridModel(20)
			u, _ := online.ForModel(m, online.Options{Rule: rule, Rate: 0.5})
			q := geom.Box{Lo: geom.Point{0.2, 0.2}, Hi: geom.Point{0.7, 0.7}}
			target := core.Clamp01(m.Estimate(q) + 0.15)
			var last core.Model = m
			for i := 0; i < 200; i++ {
				nm, _ := u.Apply([]core.LabeledQuery{{R: q, Sel: target}})
				if nm != nil {
					last = nm
				}
			}
			if got := last.Estimate(q); math.Abs(got-target) > 0.02 {
				t.Fatalf("rule %v did not converge: got %v want %v", rule, got, target)
			}
		})
	}
}

// TestMassAndNonnegativityPreserved: after any update stream, weights stay
// nonnegative and total mass stays at the training-time total.
func TestMassAndNonnegativityPreserved(t *testing.T) {
	for _, rule := range []online.Rule{online.RuleGradient, online.RuleMultiplicative} {
		t.Run(rule.String(), func(t *testing.T) {
			m := gridModel(16)
			sum0 := sum(m.Weights)
			u, _ := online.ForModel(m, online.Options{Rule: rule, Rate: 1.5})
			r := rng.New(42)
			var cur core.Model = m
			for i := 0; i < 300; i++ {
				nm, _ := u.Apply([]core.LabeledQuery{{R: randomBox(r), Sel: r.Float64()}})
				if nm != nil {
					cur = nm
				}
			}
			hm := cur.(*hist.Model)
			for j, w := range hm.Weights {
				if w < 0 || math.IsNaN(w) {
					t.Fatalf("weight %d invalid after updates: %v", j, w)
				}
			}
			if got := sum(hm.Weights); math.Abs(got-sum0) > 1e-9 {
				t.Fatalf("mass drifted: %v vs %v", got, sum0)
			}
		})
	}
}

// TestBaseModelUndisturbed: COW means the base model's weights and
// estimates are bit-identical after arbitrarily many updates.
func TestBaseModelUndisturbed(t *testing.T) {
	m := gridModel(20)
	w0 := make([]float64, len(m.Weights))
	copy(w0, m.Weights)
	q := geom.Box{Lo: geom.Point{0.3, 0.1}, Hi: geom.Point{0.8, 0.9}}
	before := m.Estimate(q)

	u, _ := online.ForModel(m, online.Options{})
	r := rng.New(7)
	for i := 0; i < 100; i++ {
		u.Apply([]core.LabeledQuery{{R: randomBox(r), Sel: r.Float64()}})
	}
	for j := range w0 {
		if m.Weights[j] != w0[j] {
			t.Fatalf("base model weight %d mutated by online updates", j)
		}
	}
	if got := m.Estimate(q); got != before {
		t.Fatalf("base model estimate changed: %v vs %v", got, before)
	}
}

// TestStructureShared: the updated model must share bucket-slice backing
// with the base model (geometry COW, no copies per update).
func TestStructureShared(t *testing.T) {
	m := gridModel(20)
	u, _ := online.ForModel(m, online.Options{})
	q := geom.Box{Lo: geom.Point{0.1, 0.1}, Hi: geom.Point{0.5, 0.5}}
	nm, _ := u.Apply([]core.LabeledQuery{{R: q, Sel: 0.5}})
	if nm == nil {
		t.Fatal("update not applied")
	}
	hm := nm.(*hist.Model)
	if &hm.Buckets[0] != &m.Buckets[0] {
		t.Fatal("updated model does not share bucket geometry with base")
	}
	if &hm.Weights[0] == &m.Weights[0] {
		t.Fatal("updated model shares weight backing with base (not COW)")
	}
}

// TestSmallModelFlatPath: below the BVH threshold the updater uses the
// flat coverage scan and must behave identically in contract terms.
func TestSmallModelFlatPath(t *testing.T) {
	m := gridModel(4) // 16 buckets, below IndexThreshold
	u, ok := online.ForModel(m, online.Options{})
	if !ok {
		t.Fatal("ForModel rejected small model")
	}
	q := geom.Box{Lo: geom.Point{0, 0}, Hi: geom.Point{0.5, 0.5}}
	target := core.Clamp01(m.Estimate(q) + 0.1)
	nm, st := u.Apply([]core.LabeledQuery{{R: q, Sel: target}})
	if nm == nil || st.Applied != 1 {
		t.Fatalf("flat-path update not applied: %+v", st)
	}
	if math.Abs(nm.Estimate(q)-target) >= math.Abs(m.Estimate(q)-target) {
		t.Fatal("flat-path update did not reduce error")
	}
}

// TestFoldGranularities: the same stream applied item-by-item and as one
// batch renormalizes at different points (so weights legitimately differ),
// but both folds must preserve total mass exactly, keep weights
// nonnegative, and land within converged distance of each other on a
// repeatedly-observed query. The coverage-row exactness of the indexed
// path versus the flat scan is property-tested in internal/bvh.
func TestFoldGranularities(t *testing.T) {
	m1 := gridModel(20)
	m2 := gridModel(20)
	sum0 := sum(m1.Weights)
	u1, _ := online.ForModel(m1, online.Options{Rate: 0.7})
	u2, _ := online.ForModel(m2, online.Options{Rate: 0.7})
	r := rng.New(1234)
	q := geom.Box{Lo: geom.Point{0.25, 0.25}, Hi: geom.Point{0.75, 0.75}}
	stream := make([]core.LabeledQuery, 150)
	for i := range stream {
		if i%3 == 0 {
			stream[i] = core.LabeledQuery{R: q, Sel: 0.4}
		} else {
			stream[i] = core.LabeledQuery{R: randomBox(r), Sel: r.Float64()}
		}
	}
	var f1, f2 core.Model
	for _, z := range stream {
		if nm, _ := u1.Apply([]core.LabeledQuery{{R: z.R, Sel: z.Sel}}); nm != nil {
			f1 = nm
		}
	}
	if nm, _ := u2.Apply(stream); nm != nil {
		f2 = nm
	}
	h1, h2 := f1.(*hist.Model), f2.(*hist.Model)
	for _, h := range []*hist.Model{h1, h2} {
		if got := sum(h.Weights); math.Abs(got-sum0) > 1e-9 {
			t.Fatalf("fold did not preserve mass: %v vs %v", got, sum0)
		}
		for j, w := range h.Weights {
			if w < 0 || math.IsNaN(w) {
				t.Fatalf("fold produced invalid weight %d: %v", j, w)
			}
		}
	}
	if e1, e2 := h1.Estimate(q), h2.Estimate(q); math.Abs(e1-e2) > 0.1 {
		t.Fatalf("folds disagree on the repeated query: %v vs %v", e1, e2)
	}
}

// TestDeterministicFold: the same stream applied twice to identical base
// models yields byte-identical final weights.
func TestDeterministicFold(t *testing.T) {
	run := func() []float64 {
		m := gridModel(20)
		u, _ := online.ForModel(m, online.Options{Rule: online.RuleMultiplicative, Rate: 0.6})
		r := rng.New(99)
		var cur core.Model = m
		for i := 0; i < 120; i++ {
			if nm, _ := u.Apply([]core.LabeledQuery{{R: randomBox(r), Sel: r.Float64()}}); nm != nil {
				cur = nm
			}
		}
		return cur.(*hist.Model).Weights
	}
	w1, w2 := run(), run()
	for j := range w1 {
		if w1[j] != w2[j] {
			t.Fatalf("weight %d not deterministic: %v vs %v", j, w1[j], w2[j])
		}
	}
}

// TestSkipPolicy: out-of-range labels and zero-coverage queries are
// skipped, never applied, and a batch of only skips publishes nothing.
func TestSkipPolicy(t *testing.T) {
	m := gridModel(10)
	u, _ := online.ForModel(m, online.Options{})
	// Query box entirely outside [0,1]^2 overlaps nothing.
	far := geom.Box{Lo: geom.Point{2, 2}, Hi: geom.Point{3, 3}}
	nm, st := u.Apply([]core.LabeledQuery{
		{R: far, Sel: 0.5},
		{R: geom.UnitCube(2), Sel: 1.5},
		{R: geom.UnitCube(2), Sel: -0.1},
		{R: geom.UnitCube(2), Sel: math.NaN()},
	})
	if nm != nil {
		t.Fatal("skip-only batch published a model")
	}
	if st.Applied != 0 || st.Skipped != 4 {
		t.Fatalf("skip accounting wrong: %+v", st)
	}
}

// TestDimensionMismatchSkipped: a query of the wrong dimensionality is a
// skip, not a panic.
func TestDimensionMismatchSkipped(t *testing.T) {
	m := gridModel(10)
	u, _ := online.ForModel(m, online.Options{})
	q3 := geom.Box{Lo: geom.Point{0, 0, 0}, Hi: geom.Point{1, 1, 1}}
	nm, st := u.Apply([]core.LabeledQuery{{R: q3, Sel: 0.5}})
	if nm != nil || st.Skipped != 1 {
		t.Fatalf("dimension mismatch not skipped: %+v", st)
	}
}

// TestQuickselSupported: the QUICKSEL family (overlapping buckets) takes
// online updates through the same interface.
func TestQuickselSupported(t *testing.T) {
	r := rng.New(3)
	samples := make([]core.LabeledQuery, 40)
	for i := range samples {
		samples[i] = core.LabeledQuery{R: randomBox(r), Sel: r.Float64() * 0.5}
	}
	tr := quicksel.New(2, 17)
	m, err := tr.Train(samples)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := online.ForModel(m, online.Options{})
	if !ok {
		t.Fatal("ForModel rejected a quicksel model")
	}
	q := geom.Box{Lo: geom.Point{0.2, 0.2}, Hi: geom.Point{0.8, 0.8}}
	before := m.Estimate(q)
	target := core.Clamp01(before + 0.2)
	nm, st := u.Apply([]core.LabeledQuery{{R: q, Sel: target}})
	if nm == nil || st.Applied != 1 {
		t.Fatalf("quicksel update not applied: %+v", st)
	}
	if math.Abs(nm.Estimate(q)-target) >= math.Abs(before-target) {
		t.Fatal("quicksel update did not reduce error")
	}
}

// TestForModelRejections: non-reweightable models and empty batches are
// rejected cleanly.
func TestForModelRejections(t *testing.T) {
	if _, ok := online.ForModel(nonReweightable{}, online.Options{}); ok {
		t.Fatal("ForModel accepted a non-reweightable model")
	}
	m := gridModel(8)
	u, _ := online.ForModel(m, online.Options{})
	if nm, st := u.Apply(nil); nm != nil || st.Applied != 0 {
		t.Fatal("empty batch produced an update")
	}
	if u.Model() != m {
		t.Fatal("Model() before any update is not the base model")
	}
}

type nonReweightable struct{}

func (nonReweightable) Estimate(geom.Range) float64 { return 0 }
func (nonReweightable) NumBuckets() int             { return 0 }

// TestParseRule round-trips the flag values.
func TestParseRule(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want online.Rule
	}{{"", online.RuleGradient}, {"gradient", online.RuleGradient},
		{"multiplicative", online.RuleMultiplicative}, {"mw", online.RuleMultiplicative}} {
		got, err := online.ParseRule(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseRule(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := online.ParseRule("nonsense"); err == nil {
		t.Fatal("ParseRule accepted nonsense")
	}
}
