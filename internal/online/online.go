// Package online is the microsecond feedback-to-model learning subsystem:
// it turns a single observed (query, selectivity) pair into a live model
// improvement with no retraining, the continuous-adaptation mode the
// online-learning selectivity line (arXiv:2607.02895) studies with regret
// bounds and "A Practical Theory of Generalization in Selectivity
// Learning" (arXiv:2409.07014) motivates under drifting workloads.
//
// The subsystem applies to the bucket-weight model families (QUADHIST,
// QUICKSEL — anything implementing core.Reweightable): bucket geometry and
// the BVH index structure are fixed at training time, so one feedback item
// reduces to a sparse update of the weight vector. An update is three
// steps, all O(touched buckets) except a final O(m) pass:
//
//  1. Coverage row: the fractional coverages aⱼ = vol(Bⱼ∩R)/vol(Bⱼ) of
//     the buckets the query overlaps, enumerated sparsely through the BVH
//     (disjoint subtrees pruned, contained subtrees enumerated without
//     classification).
//  2. Step: with prediction p = Σ aⱼwⱼ and observed selectivity s, either
//     a relaxed-Kaczmarz online-gradient step
//     wⱼ ← max(0, wⱼ − η·(p−s)·aⱼ/‖a‖²)
//     (projection onto the nonnegative orthant; η=1 would correct this
//     query's residual exactly), or a multiplicative-weights /
//     exponentiated-gradient step wⱼ ← wⱼ·exp(−η·(p−s)·aⱼ).
//  3. Mass restoration: rescale the whole vector to the training-time
//     total Σw (for the simplex-constrained solvers that total is 1), the
//     normalization half of the exponentiated-gradient update and a cheap
//     stand-in for the exact simplex projection the batch solvers enforce.
//
// Publication is copy-on-write: Apply never mutates the weights concurrent
// estimates are reading — it builds a fresh vector and hands back a new
// model via core.Reweightable.WithWeights, which shares the bucket
// geometry and BVH node structure and recomputes only the cached subtree
// sums. The serving layer publishes that model as a registry generation
// bump, so the estimate cache invalidates exactly and no reader ever sees
// a torn vector.
//
// Everything in this package is deterministic: a given feedback sequence
// applied to a given base model yields byte-identical weights regardless
// of what concurrent estimate traffic is doing (verified by the serve
// layer's determinism self-check).
package online

import (
	"fmt"
	"math"

	"repro/internal/bvh"
	"repro/internal/core"
)

// Rule selects the per-observation update rule.
type Rule int

const (
	// RuleGradient is the relaxed-Kaczmarz online-gradient step with
	// nonnegativity projection (the default). It can re-grow buckets the
	// solver zeroed out, which matters under workload drift.
	RuleGradient Rule = iota
	// RuleMultiplicative is the multiplicative-weights / exponentiated-
	// gradient step. Zero-weight buckets stay zero (the classic MW
	// property), so mass moves only within the solver's support.
	RuleMultiplicative
)

// String names the rule for flags, /statz, and experiment output.
func (r Rule) String() string {
	switch r {
	case RuleGradient:
		return "gradient"
	case RuleMultiplicative:
		return "multiplicative"
	}
	return fmt.Sprintf("rule(%d)", int(r))
}

// ParseRule resolves a rule name as used by the selserve -online-rule flag.
func ParseRule(s string) (Rule, error) {
	switch s {
	case "", "gradient":
		return RuleGradient, nil
	case "multiplicative", "mw":
		return RuleMultiplicative, nil
	}
	return 0, fmt.Errorf("online: unknown rule %q (want gradient or multiplicative)", s)
}

// DefaultRate is the default learning rate η. For the gradient rule η is
// the fraction of this query's residual corrected per observation (1 =
// exact interpolation of the newest observation, Kaczmarz); 0.5 trades
// convergence speed against noise amplification on noisy feedback.
const DefaultRate = 0.5

// maxExponent clamps the multiplicative-weights exponent so a pathological
// learning rate cannot overflow exp.
const maxExponent = 30

// Options configures an Updater.
type Options struct {
	// Rule picks the update rule (RuleGradient by default).
	Rule Rule
	// Rate is the learning rate η (DefaultRate if zero or negative).
	Rate float64
}

func (o Options) withDefaults() Options {
	if o.Rate <= 0 {
		o.Rate = DefaultRate
	}
	return o
}

// Stats reports what one Apply call did.
type Stats struct {
	// Applied counts observations folded into the returned weights.
	Applied int
	// Skipped counts observations carrying no usable signal: the query
	// overlaps no bucket (the model family cannot express a correction)
	// or its label is outside [0,1].
	Skipped int
	// Drift is the L1 distance ‖w_new − w_old‖₁ the weight vector moved,
	// the magnitude the serving layer accumulates into its cumulative
	// weight-drift gauge.
	Drift float64
}

// Updater folds feedback observations into a Reweightable model family,
// publishing copy-on-write weight snapshots.
//
// An Updater is NOT safe for concurrent use: callers serialize Apply (the
// serving layer holds one per-model mutex around it). Concurrent Estimate
// traffic against the models it has produced is always safe — published
// models are immutable.
type Updater interface {
	// Apply folds the batch into the current weights and returns the
	// model to publish (sharing structure with the base model), or nil
	// when nothing was applied. On a non-nil return the Updater's own
	// state advances to the returned model, so the next Apply continues
	// from it.
	Apply(batch []core.LabeledQuery) (core.Model, Stats)
	// Model returns the model the Updater currently considers live: the
	// last Apply result, or the base model before any update.
	Model() core.Model
	// Rule reports the configured update rule.
	Rule() Rule
}

// ForModel returns an Updater for the model when its family supports
// online weight updates (it implements core.Reweightable and has at least
// one bucket), and ok=false otherwise — callers fall back to the full
// retrain path. The model must already obey the core.Model immutability
// contract; the Updater never mutates it.
func ForModel(m core.Model, opts Options) (Updater, bool) {
	rw, ok := m.(core.Reweightable)
	if !ok {
		return nil, false
	}
	buckets, weights := rw.WeightView()
	if len(buckets) == 0 || len(buckets) != len(weights) {
		return nil, false
	}
	sum0 := 0.0
	for _, w := range weights {
		sum0 += w
	}
	if sum0 <= 0 || math.IsNaN(sum0) || math.IsInf(sum0, 0) {
		return nil, false
	}
	u := &weightUpdater{
		cur:     rw,
		weights: weights,
		sum0:    sum0,
		opts:    opts.withDefaults(),
	}
	// Make the base model's own index hot so the first WithWeights result
	// is seeded (an O(m) reweight instead of a rebuild) and the first
	// estimate after a publish is already sub-linear.
	core.Accelerate(m)
	// The updater keeps a private geometry index for coverage enumeration
	// at the same threshold the estimate path indexes at; smaller models
	// enumerate coverage with the flat scan.
	if len(buckets) >= bvh.IndexThreshold {
		u.tree = bvh.Build(buckets, weights)
	}
	return u, true
}

// weightUpdater implements Updater over a core.Reweightable family.
type weightUpdater struct {
	cur     core.Reweightable
	weights []float64 // cur's weight vector (never mutated in place)
	tree    *bvh.Tree // coverage index over the fixed bucket geometry; nil = flat scan
	sum0    float64   // training-time total mass, restored after every batch
	opts    Options

	// Per-observation scratch, reused across Apply calls (the Updater is
	// single-writer by contract).
	touchIdx  []int
	touchFrac []float64
}

// Model implements Updater.
func (u *weightUpdater) Model() core.Model { return u.cur }

// Rule implements Updater.
func (u *weightUpdater) Rule() Rule { return u.opts.Rule }

// Apply implements Updater. The batch folds sequentially — each
// observation sees the effect of the previous one — and the result is
// published as one copy-on-write weight vector.
func (u *weightUpdater) Apply(batch []core.LabeledQuery) (core.Model, Stats) {
	var st Stats
	if len(batch) == 0 {
		return nil, st
	}
	w := make([]float64, len(u.weights))
	copy(w, u.weights)
	for _, z := range batch {
		if u.applyOne(w, z) {
			st.Applied++
		} else {
			st.Skipped++
		}
	}
	if st.Applied == 0 {
		return nil, st
	}
	if !restoreMass(w, u.sum0) {
		// Every weight collapsed to zero (or went non-finite): the update
		// destroyed the distribution, which a published model must never
		// be. Drop the batch; the retrain path remains the fallback.
		st.Skipped += st.Applied
		st.Applied = 0
		return nil, st
	}
	for i, wi := range w {
		st.Drift += math.Abs(wi - u.weights[i])
	}
	m := u.cur.WithWeights(w)
	u.cur = m.(core.Reweightable)
	u.weights = w
	return m, st
}

// applyOne folds one observation into w, reporting whether it carried
// signal.
func (u *weightUpdater) applyOne(w []float64, z core.LabeledQuery) bool {
	if math.IsNaN(z.Sel) || z.Sel < 0 || z.Sel > 1 {
		return false
	}
	buckets, _ := u.cur.WeightView()
	if z.R.Dim() != buckets[0].Dim() {
		return false
	}
	idx := u.touchIdx[:0]
	frac := u.touchFrac[:0]
	collect := func(j int, f float64) {
		idx = append(idx, j)
		frac = append(frac, f)
	}
	if u.tree != nil {
		u.tree.ForEachOverlap(z.R, collect)
	} else {
		bvh.ForEachOverlapFlat(buckets, z.R, collect)
	}
	u.touchIdx, u.touchFrac = idx, frac
	if len(idx) == 0 {
		return false
	}

	p, norm2 := 0.0, 0.0
	for k, j := range idx {
		p += frac[k] * w[j]
		norm2 += frac[k] * frac[k]
	}
	e := p - z.Sel
	switch u.opts.Rule {
	case RuleMultiplicative:
		for k, j := range idx {
			x := -u.opts.Rate * e * frac[k]
			if x > maxExponent {
				x = maxExponent
			} else if x < -maxExponent {
				x = -maxExponent
			}
			w[j] *= math.Exp(x)
		}
	default: // RuleGradient
		if norm2 == 0 {
			return false
		}
		step := u.opts.Rate * e / norm2
		for k, j := range idx {
			nw := w[j] - step*frac[k]
			if nw < 0 {
				nw = 0
			}
			w[j] = nw
		}
	}
	return true
}

// restoreMass rescales w so Σw = sum0, reporting false when the vector has
// degenerated (non-positive or non-finite total).
func restoreMass(w []float64, sum0 float64) bool {
	total := 0.0
	for _, wi := range w {
		total += wi
	}
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return false
	}
	scale := sum0 / total
	for i := range w {
		w[i] *= scale
	}
	return true
}
