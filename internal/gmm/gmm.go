// Package gmm implements a Gaussian-mixture selectivity model — the
// paper's "future work" model family ("our framework … works even if we
// consider data distributions with unbounded support, e.g., Gaussian
// mixtures; developing an algorithm that computes a Gaussian mixture with
// a small loss given a training sample is … an open problem").
//
// The model is a mixture of K isotropic Gaussians. Isotropy buys exact
// selectivities for all three query classes of the paper:
//
//   - Box: product of per-dimension normal-CDF differences.
//   - Halfspace {a·x ≥ b}: 1 − Φ((b − a·μ)/(σ‖a‖)) — a·X is univariate
//     normal.
//   - Ball of radius ρ around c: ‖X−c‖²/σ² is noncentral chi-square with
//     d degrees of freedom and noncentrality ‖μ−c‖²/σ².
//
// Training is the same two-phase recipe as the paper's generic learners:
// bucket (component) design followed by convex weight estimation. The
// components are placed by k-means over points sampled from the training
// query interiors (selectivity-proportional, as in PTSHIST), component
// spreads are the cluster RMS radii, and the mixture weights solve the
// constrained least-squares program of Eq. 8 — which is convex because the
// component parameters are held fixed.
package gmm

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/ptshist"
	"repro/internal/rng"
	"repro/internal/solver"
)

// Component is one isotropic Gaussian of the mixture.
type Component struct {
	Mean  geom.Point
	Sigma float64
}

// Mass returns the component's probability mass inside the range, exactly
// for boxes, halfspaces and balls, and by bounding-box sampling otherwise.
// Pointer and value forms of the three closed-form classes take the same
// code path — the serving wire decoder passes pointers to pooled geometry.
func (c Component) Mass(r geom.Range) float64 {
	switch q := r.(type) {
	case geom.Box:
		return c.boxMass(q)
	case *geom.Box:
		return c.boxMass(*q)
	case geom.Halfspace:
		return c.halfspaceMass(q)
	case *geom.Halfspace:
		return c.halfspaceMass(*q)
	case geom.Ball:
		return c.ballMass(q)
	case *geom.Ball:
		return c.ballMass(*q)
	default:
		return c.sampleMass(r)
	}
}

func (c Component) boxMass(q geom.Box) float64 {
	m := 1.0
	for i := range c.Mean {
		lo := (q.Lo[i] - c.Mean[i]) / c.Sigma
		hi := (q.Hi[i] - c.Mean[i]) / c.Sigma
		if hi <= lo {
			return 0
		}
		m *= normCDF(hi) - normCDF(lo)
		if m == 0 {
			return 0
		}
	}
	return m
}

func (c Component) halfspaceMass(q geom.Halfspace) float64 {
	norm := q.A.Norm()
	if norm == 0 {
		if q.B <= 0 {
			return 1
		}
		return 0
	}
	return 1 - normCDF((q.B-q.A.Dot(c.Mean))/(c.Sigma*norm))
}

func (c Component) ballMass(q geom.Ball) float64 {
	if q.Radius <= 0 {
		return 0
	}
	d := float64(len(c.Mean))
	dist := c.Mean.Dist(q.Center)
	lambda := (dist / c.Sigma) * (dist / c.Sigma)
	x := (q.Radius / c.Sigma) * (q.Radius / c.Sigma)
	return noncentralChiSquareCDF(x, d, lambda)
}

// sampleMass estimates the mass by deterministic sampling of the Gaussian
// (Box–Muller over a Halton-free seeded stream would do; we use the shared
// RNG with a fixed seed derived from the component for reproducibility).
func (c Component) sampleMass(r geom.Range) float64 {
	const n = 4096
	rr := rng.New(uint64(math.Float64bits(c.Sigma)) ^ uint64(math.Float64bits(c.Mean[0])))
	hits := 0
	p := make(geom.Point, len(c.Mean))
	for i := 0; i < n; i++ {
		for j := range p {
			p[j] = c.Mean[j] + c.Sigma*rr.NormFloat64()
		}
		if r.Contains(p) {
			hits++
		}
	}
	return float64(hits) / n
}

// Model is a trained isotropic Gaussian mixture.
type Model struct {
	Components []Component
	Weights    []float64
}

// NumBuckets implements core.Model (components play the role of buckets).
func (m *Model) NumBuckets() int { return len(m.Components) }

// Estimate implements core.Model.
func (m *Model) Estimate(r geom.Range) float64 {
	s := 0.0
	for k, c := range m.Components {
		if w := m.Weights[k]; w > 0 {
			s += w * c.Mass(r)
		}
	}
	return core.Clamp01(s)
}

// Options configures GMM training.
type Options struct {
	// K is the number of mixture components.
	K int
	// Seed drives component placement.
	Seed uint64
	// SamplesPerComponent controls how many interior points feed k-means
	// (default 20).
	SamplesPerComponent int
	// SigmaScales is the grid of spread multipliers tried during
	// training; the one with the lowest training loss wins (default
	// {0.5, 1, 2}).
	SigmaScales []float64
	// Solver picks the weight-estimation algorithm.
	Solver solver.Method
}

// Trainer builds Gaussian-mixture models.
type Trainer struct {
	Dim  int
	Opts Options
}

// New returns a GMM trainer with K components.
func New(dim, k int, seed uint64) *Trainer {
	return &Trainer{Dim: dim, Opts: Options{K: k, Seed: seed}}
}

// Name implements core.Trainer.
func (t *Trainer) Name() string { return "GaussMix" }

// Train implements core.Trainer.
func (t *Trainer) Train(samples []core.LabeledQuery) (core.Model, error) {
	m, err := t.TrainMixture(samples)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// TrainMixture is Train with a concrete return type.
func (t *Trainer) TrainMixture(samples []core.LabeledQuery) (*Model, error) {
	if len(samples) == 0 {
		return nil, errors.New("gmm: empty training set")
	}
	if t.Opts.K <= 0 {
		return nil, errors.New("gmm: K must be positive")
	}
	spc := t.Opts.SamplesPerComponent
	if spc == 0 {
		spc = 20
	}
	scales := t.Opts.SigmaScales
	if len(scales) == 0 {
		scales = []float64{0.5, 1, 2}
	}

	// Component design: selectivity-proportional interior sampling
	// (reusing PTSHIST's bucket-design phase), then k-means.
	sampler := &ptshist.Trainer{Dim: t.Dim, Opts: ptshist.Options{
		K:    t.Opts.K * spc,
		Seed: t.Opts.Seed,
	}}
	pts := sampler.SamplePoints(samples)
	r := rng.New(t.Opts.Seed + 101)
	centers, spreads := kMeans(pts, t.Opts.K, r, 25)
	if len(centers) == 0 {
		return nil, errors.New("gmm: component placement failed")
	}

	s := core.Selectivities(samples)
	var best *Model
	bestLoss := math.Inf(1)
	for _, scale := range scales {
		comps := make([]Component, len(centers))
		for k := range centers {
			comps[k] = Component{Mean: centers[k], Sigma: spreads[k] * scale}
		}
		a := designMatrix(samples, comps)
		w, err := solver.WeightsWith(t.Opts.Solver, a, s)
		if err != nil {
			return nil, fmt.Errorf("gmm: weight estimation: %w", err)
		}
		cand := &Model{Components: comps, Weights: w}
		loss := core.MSE(cand, samples)
		if loss < bestLoss {
			best, bestLoss = cand, loss
		}
	}
	return best, nil
}

// designMatrix assembles A[i][k] = mass of component k inside query i.
func designMatrix(samples []core.LabeledQuery, comps []Component) *linalg.Matrix {
	a := linalg.NewMatrix(len(samples), len(comps))
	for i, z := range samples {
		row := a.Row(i)
		for k, c := range comps {
			row[k] = c.Mass(z.R)
		}
	}
	return a
}

var _ core.Trainer = (*Trainer)(nil)
var _ core.Model = (*Model)(nil)
