package gmm

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/workload"
)

// simulate estimates a component's mass in a range by direct sampling of
// the Gaussian (test reference).
func simulate(c Component, r geom.Range, n int, seed uint64) float64 {
	rr := rng.New(seed)
	p := make(geom.Point, len(c.Mean))
	hits := 0
	for i := 0; i < n; i++ {
		for j := range p {
			p[j] = c.Mean[j] + c.Sigma*rr.NormFloat64()
		}
		if r.Contains(p) {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

func TestComponentBoxMass(t *testing.T) {
	c := Component{Mean: geom.Point{0.5, 0.4}, Sigma: 0.2}
	cases := []geom.Box{
		geom.NewBox(geom.Point{0.3, 0.2}, geom.Point{0.7, 0.6}),
		geom.NewBox(geom.Point{0, 0}, geom.Point{1, 1}),
		geom.NewBox(geom.Point{0.9, 0.9}, geom.Point{1, 1}),
	}
	for _, q := range cases {
		got := c.Mass(q)
		want := simulate(c, q, 300000, 3)
		if math.Abs(got-want) > 0.004 {
			t.Fatalf("box %v: mass %v, simulated %v", q, got, want)
		}
	}
}

func TestComponentHalfspaceMass(t *testing.T) {
	c := Component{Mean: geom.Point{0.5, 0.5, 0.5}, Sigma: 0.15}
	cases := []geom.Halfspace{
		geom.NewHalfspace(geom.Point{1, 0, 0}, 0.5),  // through the mean: mass 1/2
		geom.NewHalfspace(geom.Point{1, 1, 1}, 1.5),  // through the mean
		geom.NewHalfspace(geom.Point{1, 1, 0}, 1.3),  // off the mean
		geom.NewHalfspace(geom.Point{-2, 1, 0}, 0.1), // mixed signs
	}
	for i, q := range cases {
		got := c.Mass(q)
		want := simulate(c, q, 300000, uint64(i+10))
		if math.Abs(got-want) > 0.004 {
			t.Fatalf("halfspace %v: mass %v, simulated %v", q, got, want)
		}
	}
	// Exact half for hyperplanes through the mean.
	if got := c.Mass(geom.NewHalfspace(geom.Point{1, 0, 0}, 0.5)); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("through-mean halfspace mass = %v", got)
	}
}

func TestComponentBallMass(t *testing.T) {
	c := Component{Mean: geom.Point{0.5, 0.5}, Sigma: 0.2}
	cases := []geom.Ball{
		geom.NewBall(geom.Point{0.5, 0.5}, 0.2), // centered: central chi-square
		geom.NewBall(geom.Point{0.8, 0.5}, 0.3), // off-center
		geom.NewBall(geom.Point{0.1, 0.1}, 0.25),
	}
	for i, q := range cases {
		got := c.Mass(q)
		want := simulate(c, q, 300000, uint64(i+30))
		if math.Abs(got-want) > 0.004 {
			t.Fatalf("ball %v: mass %v, simulated %v", q, got, want)
		}
	}
}

func TestComponentDegenerateRanges(t *testing.T) {
	c := Component{Mean: geom.Point{0.5, 0.5}, Sigma: 0.1}
	if got := c.Mass(geom.NewBall(geom.Point{0.5, 0.5}, 0)); got != 0 {
		t.Fatalf("zero-radius ball mass = %v", got)
	}
	empty := geom.NewBox(geom.Point{0.6, 0.6}, geom.Point{0.4, 0.4})
	if got := c.Mass(empty); got != 0 {
		t.Fatalf("empty box mass = %v", got)
	}
}

func TestKMeansBasics(t *testing.T) {
	r := rng.New(3)
	// Two well-separated blobs.
	pts := make([]geom.Point, 0, 200)
	for i := 0; i < 100; i++ {
		pts = append(pts, geom.Point{0.2 + 0.02*r.NormFloat64(), 0.2 + 0.02*r.NormFloat64()})
		pts = append(pts, geom.Point{0.8 + 0.02*r.NormFloat64(), 0.8 + 0.02*r.NormFloat64()})
	}
	centers, spreads := kMeans(pts, 2, r, 30)
	if len(centers) != 2 || len(spreads) != 2 {
		t.Fatalf("got %d centers", len(centers))
	}
	// One center near each blob.
	d00 := centers[0].Dist(geom.Point{0.2, 0.2})
	d01 := centers[0].Dist(geom.Point{0.8, 0.8})
	near0 := math.Min(d00, d01)
	if near0 > 0.05 {
		t.Fatalf("center 0 far from both blobs: %v", centers[0])
	}
	for _, s := range spreads {
		if s <= 0 {
			t.Fatalf("non-positive spread %v", s)
		}
	}
}

func TestKMeansMorePointsThanClusters(t *testing.T) {
	r := rng.New(5)
	pts := []geom.Point{{0.1, 0.1}, {0.9, 0.9}}
	centers, _ := kMeans(pts, 5, r, 10)
	if len(centers) != 2 {
		t.Fatalf("k capped to n: got %d centers", len(centers))
	}
	if centers, _ := kMeans(nil, 3, r, 10); centers != nil {
		t.Fatal("empty input should yield nil")
	}
}

func TestTrainOnWorkload(t *testing.T) {
	ds := dataset.Power(6000, 1).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 42)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 150, 150)
	m, err := New(2, 60, 7).TrainMixture(train)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumBuckets() == 0 {
		t.Fatal("no components")
	}
	if rms := core.RMS(m, test); rms > 0.1 {
		t.Fatalf("test RMS = %v", rms)
	}
	// Weights on the simplex.
	sum := 0.0
	for _, w := range m.Weights {
		if w < -1e-12 {
			t.Fatalf("negative weight %v", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestTrainBallQueries(t *testing.T) {
	ds := dataset.Forest(5000, 2).NumericProjection(3)
	g := workload.NewGenerator(ds, 11)
	spec := workload.Spec{Class: workload.Ball, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 120, 120)
	m, err := New(3, 50, 9).TrainMixture(train)
	if err != nil {
		t.Fatal(err)
	}
	if rms := core.RMS(m, test); rms > 0.15 {
		t.Fatalf("ball test RMS = %v", rms)
	}
}

func TestTrainHalfspaceQueries(t *testing.T) {
	ds := dataset.Power(5000, 3).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 13)
	spec := workload.Spec{Class: workload.Halfspace, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 120, 120)
	m, err := New(2, 50, 11).TrainMixture(train)
	if err != nil {
		t.Fatal(err)
	}
	if rms := core.RMS(m, test); rms > 0.15 {
		t.Fatalf("halfspace test RMS = %v", rms)
	}
}

func TestEstimatesInRange(t *testing.T) {
	ds := dataset.Power(4000, 4).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 17)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.Random}
	train, test := g.TrainTest(spec, 80, 150)
	m, err := New(2, 40, 13).TrainMixture(train)
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range test {
		e := m.Estimate(z.R)
		if e < 0 || e > 1 {
			t.Fatalf("estimate %v out of range", e)
		}
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := New(2, 0, 1).TrainMixture([]core.LabeledQuery{{R: geom.UnitCube(2), Sel: 1}}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := New(2, 5, 1).TrainMixture(nil); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts := make([]geom.Point, 0, 100)
	rr := rng.New(5)
	for i := 0; i < 100; i++ {
		pts = append(pts, geom.Point{rr.Float64(), rr.Float64()})
	}
	c1, s1 := kMeans(pts, 5, rng.New(9), 20)
	c2, s2 := kMeans(pts, 5, rng.New(9), 20)
	for i := range c1 {
		if c1[i].Dist(c2[i]) != 0 || s1[i] != s2[i] {
			t.Fatalf("k-means not deterministic at center %d", i)
		}
	}
}

func TestKMeansSpreadFloor(t *testing.T) {
	// Identical points give degenerate clusters; the spread floor keeps
	// them valid distributions.
	pts := []geom.Point{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}, {0.9, 0.9}}
	_, spreads := kMeans(pts, 2, rng.New(3), 10)
	for _, s := range spreads {
		if s < 0.01 {
			t.Fatalf("spread %v below floor", s)
		}
	}
}
