package gmm

import (
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

// kMeans clusters the points into k clusters with Lloyd's algorithm seeded
// by k-means++ (deterministic given the RNG). It returns the centers and
// the RMS radius of each cluster (used as the component spread).
func kMeans(points []geom.Point, k int, r *rng.RNG, iters int) (centers []geom.Point, spreads []float64) {
	n := len(points)
	if n == 0 || k <= 0 {
		return nil, nil
	}
	if k > n {
		k = n
	}
	d := len(points[0])

	// k-means++ seeding.
	centers = make([]geom.Point, 0, k)
	centers = append(centers, points[r.IntN(n)].Clone())
	distSq := make([]float64, n)
	for i, p := range points {
		distSq[i] = p.Dist(centers[0])
		distSq[i] *= distSq[i]
	}
	for len(centers) < k {
		total := 0.0
		for _, v := range distSq {
			total += v
		}
		var next geom.Point
		if total <= 0 {
			next = points[r.IntN(n)].Clone()
		} else {
			u := r.Float64() * total
			acc := 0.0
			idx := n - 1
			for i, v := range distSq {
				acc += v
				if u <= acc {
					idx = i
					break
				}
			}
			next = points[idx].Clone()
		}
		centers = append(centers, next)
		for i, p := range points {
			dd := p.Dist(next)
			if sq := dd * dd; sq < distSq[i] {
				distSq[i] = sq
			}
		}
	}

	// Lloyd iterations.
	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if dd := p.Dist(ctr); dd < bestD {
					best, bestD = c, dd
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		counts := make([]int, len(centers))
		sums := make([][]float64, len(centers))
		for c := range sums {
			sums[c] = make([]float64, d)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				sums[c][j] += v
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				continue // keep the old center for empty clusters
			}
			for j := 0; j < d; j++ {
				centers[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}

	// RMS radius per cluster.
	spreads = make([]float64, len(centers))
	counts := make([]int, len(centers))
	for i, p := range points {
		c := assign[i]
		dd := p.Dist(centers[c])
		spreads[c] += dd * dd
		counts[c]++
	}
	for c := range spreads {
		if counts[c] > 0 {
			spreads[c] = math.Sqrt(spreads[c] / float64(counts[c]) / float64(d))
		}
		// Floor the spread so degenerate single-point clusters remain
		// proper distributions.
		if spreads[c] < 0.01 {
			spreads[c] = 0.01
		}
	}
	return centers, spreads
}
