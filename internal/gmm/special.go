package gmm

import "math"

// Special functions needed for exact Gaussian-mixture selectivities:
// the regularized lower incomplete gamma P(a,x) (for chi-square CDFs) and
// the noncentral chi-square CDF (for ball-query mass under an isotropic
// Gaussian).

// normCDF is the standard normal CDF Φ(x).
func normCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// gammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a,x)/Γ(a) for a > 0, x ≥ 0, using the series expansion for
// x < a+1 and the continued fraction for x ≥ a+1 (Numerical Recipes style).
func gammaP(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaCF(a, x)
	}
}

// gammaSeries evaluates P(a,x) by its power series.
func gammaSeries(a, x float64) float64 {
	lnGammaA, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lnGammaA)
}

// gammaCF evaluates Q(a,x) = 1 − P(a,x) by its continued fraction
// (modified Lentz algorithm).
func gammaCF(a, x float64) float64 {
	lnGammaA, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lnGammaA) * h
}

// chiSquareCDF returns P(χ²_k ≤ x).
func chiSquareCDF(x float64, k float64) float64 {
	if x <= 0 {
		return 0
	}
	return gammaP(k/2, x/2)
}

// noncentralChiSquareCDF returns P(χ'²_k(λ) ≤ x) via the Poisson-mixture
// series Σⱼ e^{−λ/2}(λ/2)ʲ/j! · P(χ²_{k+2j} ≤ x), truncated symmetrically
// around the dominant Poisson terms.
func noncentralChiSquareCDF(x, k, lambda float64) float64 {
	if x <= 0 {
		return 0
	}
	if lambda <= 0 {
		return chiSquareCDF(x, k)
	}
	half := lambda / 2
	// Sum outward from the Poisson mode in both directions until the
	// term weights vanish.
	mode := int(half)
	logW := func(j int) float64 {
		lg, _ := math.Lgamma(float64(j) + 1)
		return -half + float64(j)*math.Log(half) - lg
	}
	total := 0.0
	for j := mode; j <= mode+2000; j++ { // ascending tail
		w := math.Exp(logW(j))
		total += w * chiSquareCDF(x, k+2*float64(j))
		if w < 1e-14 && j > mode {
			break
		}
	}
	for j := mode - 1; j >= 0; j-- { // descending tail
		w := math.Exp(logW(j))
		total += w * chiSquareCDF(x, k+2*float64(j))
		if w < 1e-14 {
			break
		}
	}
	// Numerical safety: clamp to [0,1]; truncation slightly
	// underestimates the CDF.
	if total < 0 {
		return 0
	}
	if total > 1 {
		return 1
	}
	return total
}
