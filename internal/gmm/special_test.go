package gmm

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNormCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{3, 0.998650102},
		{-6, 9.865876e-10},
	}
	for _, c := range cases {
		if got := normCDF(c.x); math.Abs(got-c.want) > 1e-8 {
			t.Fatalf("Φ(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 − e^{−x}.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := gammaP(1, x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(a, 0) = 0; P(a, ∞) → 1.
	if gammaP(3, 0) != 0 {
		t.Fatal("P(a,0) != 0")
	}
	if got := gammaP(3, 100); math.Abs(got-1) > 1e-12 {
		t.Fatalf("P(3,100) = %v", got)
	}
	// P(1/2, x) = erf(√x).
	for _, x := range []float64{0.25, 1, 4} {
		want := math.Erf(math.Sqrt(x))
		if got := gammaP(0.5, x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("P(0.5,%v) = %v, want %v", x, got, want)
		}
	}
}

func TestGammaPMonotone(t *testing.T) {
	prev := 0.0
	for x := 0.0; x <= 20; x += 0.25 {
		got := gammaP(2.5, x)
		if got < prev-1e-14 {
			t.Fatalf("P(2.5,·) not monotone at %v", x)
		}
		prev = got
	}
}

func TestChiSquareCDFKnown(t *testing.T) {
	// Median of χ²₂ is 2·ln2.
	if got := chiSquareCDF(2*math.Ln2, 2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("χ²₂ median CDF = %v", got)
	}
	// χ²₁(x) = 2Φ(√x) − 1.
	for _, x := range []float64{0.5, 1, 3.84} {
		want := 2*normCDF(math.Sqrt(x)) - 1
		if got := chiSquareCDF(x, 1); math.Abs(got-want) > 1e-10 {
			t.Fatalf("χ²₁(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestNoncentralChiSquareReducesToCentral(t *testing.T) {
	for _, x := range []float64{0.5, 2, 5, 9} {
		a := noncentralChiSquareCDF(x, 3, 0)
		b := chiSquareCDF(x, 3)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("λ=0 mismatch at %v: %v vs %v", x, a, b)
		}
	}
}

// Cross-check the noncentral chi-square CDF against direct simulation.
func TestNoncentralChiSquareAgainstSimulation(t *testing.T) {
	r := rng.New(7)
	cases := []struct {
		k      int
		lambda float64
		x      float64
	}{
		{2, 1, 3},
		{3, 4, 8},
		{5, 0.5, 4},
		{8, 10, 20},
		{4, 25, 30},
	}
	for _, c := range cases {
		const n = 400000
		// λ = Σ μᵢ²; put all noncentrality in the first coordinate.
		mu := math.Sqrt(c.lambda)
		hits := 0
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < c.k; j++ {
				v := r.NormFloat64()
				if j == 0 {
					v += mu
				}
				s += v * v
			}
			if s <= c.x {
				hits++
			}
		}
		want := float64(hits) / n
		got := noncentralChiSquareCDF(c.x, float64(c.k), c.lambda)
		if math.Abs(got-want) > 0.004 {
			t.Fatalf("ncχ²(k=%d,λ=%v)(%v) = %v, simulated %v", c.k, c.lambda, c.x, got, want)
		}
	}
}

func TestNoncentralChiSquareMonotoneInX(t *testing.T) {
	prev := -1.0
	for x := 0.0; x < 40; x += 0.5 {
		got := noncentralChiSquareCDF(x, 4, 6)
		if got < prev-1e-12 {
			t.Fatalf("ncχ² CDF not monotone at %v", x)
		}
		prev = got
	}
	if prev < 0.999 {
		t.Fatalf("ncχ² CDF tail = %v, want → 1", prev)
	}
}
