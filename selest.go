// Package selest is a Go implementation of "Selectivity Functions of Range
// Queries are Learnable" (Hu et al., SIGMOD 2022): learned selectivity
// estimation for orthogonal range, linear-inequality (halfspace) and
// distance-based (ball) queries, trained purely from query feedback.
//
// The package is a thin, stable facade over the internal packages:
//
//   - Query geometry: Box, Halfspace, Ball, DiscIntersection (geom).
//   - Learners: QUADHIST (quadtree histogram, low dimensions), PTSHIST
//     (discrete point distribution, high dimensions), the exact arrangement
//     learner of Section 3.1, plus the ISOMER and QUICKSEL baselines.
//   - Workloads: synthetic stand-ins for the paper's four datasets and the
//     Data-driven/Random/Gaussian query generators, labeled exactly via a
//     kd-tree.
//   - Theory: VC dimensions, fat-shattering bound, Bartlett–Long sample
//     complexity (Theorem 2.1).
//
// # Quick start
//
//	ds := selest.NewDataset(selest.Power, 20000, 1).Project([]int{0, 1})
//	gen := selest.NewWorkload(ds, 42)
//	train, test := gen.TrainTest(selest.Spec{
//		Class:   selest.OrthogonalRange,
//		Centers: selest.DataDriven,
//	}, 500, 200)
//	model, err := selest.NewQuadHist(2, 2000).Train(train)
//	// model.Estimate(anyRange) → selectivity in [0,1]
//	_ = err
//	fmt.Println(selest.RMS(model, test))
//
// Every experiment (table and figure) of the paper can be regenerated via
// cmd/selbench or the benchmarks in bench_test.go; see DESIGN.md and
// EXPERIMENTS.md.
package selest

import (
	"io"
	"time"

	"repro/internal/arrangement"
	"repro/internal/bvh"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/gmm"
	"repro/internal/hist"
	"repro/internal/isomer"
	"repro/internal/metrics"
	"repro/internal/modelio"
	"repro/internal/ptshist"
	"repro/internal/quicksel"
	"repro/internal/workload"
)

// Re-exported geometry types. A Range is any query region over [0,1]^d.
type (
	// Point is a point in R^d.
	Point = geom.Point
	// Range is a geometric query region (box, halfspace, ball, …).
	Range = geom.Range
	// Box is an orthogonal range query.
	Box = geom.Box
	// Halfspace is a linear-inequality query {x : A·x ≥ B}.
	Halfspace = geom.Halfspace
	// Ball is a distance-based query.
	Ball = geom.Ball
	// DiscIntersection is the semi-algebraic disc-intersection range of
	// Section 2.2.
	DiscIntersection = geom.DiscIntersection
	// LpBall is the ℓp-norm generalization of Ball (Appendix A.2).
	LpBall = geom.LpBall
	// SemiAlgebraic is the polynomial-constraint family T_{d,b,Δ} of
	// Section 2.2, with sound interval-arithmetic box predicates.
	SemiAlgebraic = geom.SemiAlgebraic
	// ConvexPolygon is the VC-dim=∞ negative example of Section 2.2.
	ConvexPolygon = geom.ConvexPolygon
)

// Re-exported learning-framework types.
type (
	// LabeledQuery is a (range, selectivity) training or test example.
	LabeledQuery = core.LabeledQuery
	// Model is a trained selectivity function.
	Model = core.Model
	// Trainer is a learning procedure.
	Trainer = core.Trainer
)

// Re-exported workload machinery.
type (
	// Dataset is a normalized point set with schema metadata.
	Dataset = dataset.Dataset
	// Workload generates labeled queries over a dataset.
	Workload = workload.Generator
	// Spec configures a workload (query class × center distribution).
	Spec = workload.Spec
)

// Query classes.
const (
	// OrthogonalRange queries are axis-aligned boxes (VC-dim 2d).
	OrthogonalRange = workload.OrthogonalRange
	// HalfspaceQueries are linear inequalities (VC-dim d+1).
	HalfspaceQueries = workload.Halfspace
	// BallQueries are Euclidean distance thresholds (VC-dim ≤ d+2).
	BallQueries = workload.Ball
	// DiscQueries are the semi-algebraic disc-intersection ranges of
	// Section 2.2, over 3D disc datasets (see the Discs dataset).
	DiscQueries = workload.DiscIntersect
)

// Center distributions.
const (
	// DataDriven centers follow the data distribution.
	DataDriven = workload.DataDriven
	// RandomCenters are uniform over the unit cube.
	RandomCenters = workload.Random
	// GaussianCenters cluster around the cube center.
	GaussianCenters = workload.Gaussian
)

// Built-in synthetic dataset names (see internal/dataset for the schema
// each one reproduces).
const (
	Power  = "power"
	Forest = "forest"
	Census = "census"
	DMV    = "dmv"
	// Discs is a dataset of discs encoded as (cx, cy, radius) points,
	// the object space of the disc-intersection query class.
	Discs = "discs"
)

// NewDataset builds one of the built-in synthetic datasets with n tuples
// (0 = the dataset's default size) and the given seed.
func NewDataset(name string, n int, seed uint64) *Dataset {
	return dataset.ByName(name, n, seed)
}

// NewWorkload builds a workload generator (and its exact labeling index)
// over the dataset.
func NewWorkload(ds *Dataset, seed uint64) *Workload {
	return workload.NewGenerator(ds, seed)
}

// NewQuadHist returns the QUADHIST trainer (Section 3.2): quadtree-guided
// histogram for dimension dim with at most maxBuckets buckets.
func NewQuadHist(dim, maxBuckets int) Trainer {
	return hist.New(dim, maxBuckets)
}

// NewPtsHist returns the PTSHIST trainer (Section 3.3): a discrete
// distribution on k points for dimension dim.
func NewPtsHist(dim, k int, seed uint64) Trainer {
	return ptshist.New(dim, k, seed)
}

// NewIsomer returns the ISOMER baseline trainer with the given training
// budget (0 = 30s), mirroring the paper's 30-minute cutoff convention.
func NewIsomer(dim int, budget time.Duration) Trainer {
	return &isomer.Trainer{Dim: dim, Opts: isomer.Options{Budget: budget}}
}

// NewQuickSel returns the QUICKSEL baseline trainer (4× bucket convention).
func NewQuickSel(dim int, seed uint64) Trainer {
	return quicksel.New(dim, seed)
}

// NewArrangement returns the exact arrangement learner of Section 3.1
// (orthogonal ranges only; cost grows as O(n^d)).
func NewArrangement(dim int, discrete bool) Trainer {
	return arrangement.New(dim, discrete)
}

// NewGaussMix returns the Gaussian-mixture trainer (the model family named
// as future work in Section 6) with k isotropic components.
func NewGaussMix(dim, k int, seed uint64) Trainer {
	return gmm.New(dim, k, seed)
}

// IncrementalQuadHist is a QUADHIST maintained under streaming query
// feedback: Observe one (query, selectivity) record at a time; weights
// refit on a cadence. See internal/hist for details.
type IncrementalQuadHist = hist.Incremental

// NewIncrementalQuadHist returns a streaming QUADHIST with split threshold
// tau, bucket cap maxBuckets (0 = unlimited), refitting every refitEvery
// observations.
func NewIncrementalQuadHist(dim int, tau float64, maxBuckets, refitEvery int) (*IncrementalQuadHist, error) {
	return hist.NewIncremental(dim, hist.IncrementalOptions{
		Tau:        tau,
		MaxBuckets: maxBuckets,
		RefitEvery: refitEvery,
	})
}

// IndexModel wraps a box-bucketed model (QUADHIST, ISOMER, QUICKSEL) in a
// bounding-volume hierarchy for sublinear prediction. It returns the model
// unchanged when its buckets are not boxes (PTSHIST and GaussMix are
// already cheap to evaluate). Estimates are identical to the unindexed
// model's.
func IndexModel(m Model) Model {
	var buckets []geom.Box
	var weights []float64
	switch t := m.(type) {
	case *hist.Model:
		buckets, weights = t.Buckets, t.Weights
	case *isomer.Model:
		buckets, weights = t.Buckets, t.Weights
	case *quicksel.Model:
		buckets, weights = t.Buckets, t.Weights
	default:
		return m
	}
	return indexedModel{tree: bvh.Build(buckets, weights), n: len(buckets)}
}

type indexedModel struct {
	tree *bvh.Tree
	n    int
}

func (im indexedModel) Estimate(r Range) float64 { return im.tree.Estimate(r) }
func (im indexedModel) NumBuckets() int          { return im.n }

// SaveModel persists a trained model in the JSON envelope format.
func SaveModel(w io.Writer, m Model) error { return modelio.Save(w, m) }

// LoadModel restores a model written by SaveModel.
func LoadModel(r io.Reader) (Model, error) { return modelio.Load(r) }

// RMS returns the model's root-mean-square error on the sample.
func RMS(m Model, samples []LabeledQuery) float64 { return core.RMS(m, samples) }

// LInf returns the model's maximum absolute error on the sample.
func LInf(m Model, samples []LabeledQuery) float64 { return core.LInf(m, samples) }

// QErrorSummary is the 50th/95th/99th/max Q-error row of the paper's
// tables.
type QErrorSummary = metrics.QErrorSummary

// QErrors returns the Q-error summary of the model on the sample; minSel
// floors both estimate and truth (use 1/dataset-size).
func QErrors(m Model, samples []LabeledQuery, minSel float64) QErrorSummary {
	est := core.Estimates(m, samples)
	truth := workload.Truths(samples)
	return metrics.SummarizeQErrors(est, truth, minSel)
}

// Theorem 2.1 calculators: minimum training-set sizes with unit constants.
// See internal/core for the underlying bounds.
var (
	// SampleComplexityOrthogonal is n₀(ε,δ) for boxes in R^d: Õ(ε^−(2d+3)).
	SampleComplexityOrthogonal = core.SampleComplexityOrthogonal
	// SampleComplexityHalfspace is n₀(ε,δ) for halfspaces: Õ(ε^−(d+4)).
	SampleComplexityHalfspace = core.SampleComplexityHalfspace
	// SampleComplexityBall is n₀(ε,δ) for balls: Õ(ε^−(d+5)).
	SampleComplexityBall = core.SampleComplexityBall
	// FatShattering is the Lemma 2.6 bound on fat_S(γ) for VC-dim λ.
	FatShattering = core.FatShattering
)

// NewBox builds an orthogonal range query from its corners.
func NewBox(lo, hi Point) Box { return geom.NewBox(lo, hi) }

// NewBall builds a distance-based query.
func NewBall(center Point, radius float64) Ball { return geom.NewBall(center, radius) }

// NewHalfspace builds the linear-inequality query {x : a·x ≥ b}.
func NewHalfspace(a Point, b float64) Halfspace { return geom.NewHalfspace(a, b) }

// NewLpBall builds a distance query under the ℓp norm (p ≥ 1; +Inf for the
// ℓ∞ cube).
func NewLpBall(center Point, radius, p float64) LpBall { return geom.NewLpBall(center, radius, p) }

// NewAnnulus builds the Figure 3 semi-algebraic example: a ring
// rInner ≤ ‖(x,y)−c‖ ≤ rOuter cut by the parabola y−cy ≤ k(x−cx)².
func NewAnnulus(cx, cy, rInner, rOuter, k float64) SemiAlgebraic {
	return geom.Annulus(cx, cy, rInner, rOuter, k)
}
