package selest

// Disabled-observability benchmarks (DESIGN.md §11): the instrumentation
// compiled into the estimate hot path and the trainers must be free when
// nobody is watching. With sampling off, span start/stop is a single
// atomic load returning the zero Span — BenchmarkObsDisabled asserts the
// whole instrumented sequence is 0 allocs/op and single-digit
// nanoseconds, so the tracer can stay wired in permanently instead of
// living behind build tags. scripts/bench.sh folds these into
// BENCH_<n>.json.

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// sinkSpan keeps the compiler from eliding the span plumbing.
var sinkSpan obs.Span

func BenchmarkObsDisabled(b *testing.B) {
	b.Run("span", func(b *testing.B) {
		tr := obs.NewTracer(obs.DefaultTraceCapacity) // sampling off by default
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			root := tr.StartRoot("request")
			child := root.Child("stage")
			child.End()
			root.End()
			sinkSpan = root
		}
	})
	b.Run("context", func(b *testing.B) {
		tr := obs.NewTracer(obs.DefaultTraceCapacity)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			root := tr.StartRoot("request")
			ctx2 := obs.ContextWithSpan(ctx, root)
			sp := obs.SpanFromContext(ctx2)
			sp.Child("stage").End()
			root.End()
		}
	})
	b.Run("counter", func(b *testing.B) {
		reg := obs.NewRegistry()
		c := reg.Counter("bench_total", "bench counter")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
}

// TestObsDisabledAllocs is the hard acceptance gate behind the benchmark:
// `go test` fails — not just reports — if the disabled path allocates.
func TestObsDisabledAllocs(t *testing.T) {
	tr := obs.NewTracer(obs.DefaultTraceCapacity)
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(1000, func() {
		root := tr.StartRoot("request")
		ctx2 := obs.ContextWithSpan(ctx, root)
		obs.SpanFromContext(ctx2).Child("stage").End()
		root.End()
	}); allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f per op, want 0", allocs)
	}
}
