#!/bin/sh
# scripts/bench.sh — run the repository-root benchmark suite and record
# ns/op per experiment id in BENCH_<n>.json (first free index, or -o FILE).
#
# Usage:
#   scripts/bench.sh                                   # default pattern, 1 iteration
#   scripts/bench.sh -p 'Fig10to12|AblationSolverNNLS' -c 3x
#   scripts/bench.sh -baseline BENCH_1.json            # adds speedup_vs_baseline
#
# The JSON maps experiment ids (fig9, fig10_12, table1, …) — or, for the
# micro/ablation benchmarks, the benchmark name itself — to ns/op. With
# -baseline pointing at a previous BENCH_<n>.json, each entry also reports
# its speedup relative to that file, so a before/after pair measured on the
# same machine documents a perf change.
#
# With -baseline, the script is also a regression gate: any benchmark more
# than 10% slower than its baseline entry (speedup < 0.90) fails the run
# with a nonzero exit after the JSON is written, listing the regressions on
# stderr — so CI or a pre-merge check can call
# `scripts/bench.sh -baseline BENCH_1.json` and trust the exit code.
set -eu

PATTERN='BenchmarkFig|BenchmarkTable|BenchmarkAblationSolver|BenchmarkObs|BenchmarkSelLoad'
COUNT=1x
BASELINE=
OUT=
while [ $# -gt 0 ]; do
    case "$1" in
    -p) PATTERN=$2; shift 2 ;;
    -c) COUNT=$2; shift 2 ;;
    -baseline) BASELINE=$2; shift 2 ;;
    -o) OUT=$2; shift 2 ;;
    *) echo "bench.sh: unknown argument $1" >&2; exit 2 ;;
    esac
done

cd "$(dirname "$0")/.."
if [ -z "$OUT" ]; then
    n=1
    while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
    OUT="BENCH_${n}.json"
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$PATTERN" -benchtime "$COUNT" -timeout 3600s . | tee "$RAW"

awk -v baseline="$BASELINE" -v pattern="$PATTERN" -v benchtime="$COUNT" '
BEGIN {
    # benchExperiment benchmarks keyed by the experiment id they run;
    # everything else keeps its benchmark name.
    id["BenchmarkFig09"] = "fig9"
    id["BenchmarkFig10to12"] = "fig10_12"
    id["BenchmarkFig13"] = "fig13"
    id["BenchmarkFig14"] = "fig14"
    id["BenchmarkFig15"] = "fig15"
    id["BenchmarkFig16"] = "fig16"
    id["BenchmarkFig17"] = "fig17"
    id["BenchmarkFig18to19"] = "fig18_19"
    id["BenchmarkFig20to21"] = "fig20_21"
    id["BenchmarkFig22to23"] = "fig22_23"
    id["BenchmarkFig24to29"] = "fig24_29"
    id["BenchmarkTable1"] = "table1"
    id["BenchmarkTable3"] = "table3"
    id["BenchmarkTable4"] = "table4"
    id["BenchmarkTable5"] = "table5"
    id["BenchmarkFigAppendixForest"] = "figB_forest_dd"
    id["BenchmarkFigAppendixDMV"] = "figB_dmv"
    id["BenchmarkFigAppendixCensus"] = "figB_census"
    id["BenchmarkExtDisc"] = "ext_disc"
    id["BenchmarkExtGMM"] = "ext_gmm"
    id["BenchmarkExtSemiAlg"] = "ext_semialg"
    id["BenchmarkExtOptimizer"] = "ext_optimizer"
    id["BenchmarkExtNoise"] = "ext_noise"
    id["BenchmarkExtPredTime"] = "ext_predtime"
    id["BenchmarkExtCrossing"] = "ext_crossing"
    id["BenchmarkExtTheory"] = "ext_theory"
    id["BenchmarkExtOnline"] = "ext_online"
    nbase = 0
    if (baseline != "") {
        while ((getline line < baseline) > 0) {
            if (match(line, /"[A-Za-z0-9_]+": \{"bench"/)) {
                key = substr(line, RSTART + 1)
                sub(/".*/, "", key)
                if (match(line, /"ns_per_op": [0-9]+/)) {
                    v = substr(line, RSTART, RLENGTH)
                    sub(/.*: /, "", v)
                    base[key] = v + 0
                }
            }
        }
        close(baseline)
    }
}
/^Benchmark/ {
    isbench = 0
    for (i = 3; i <= NF; i++) if ($i == "ns/op") { isbench = 1; nsfield = i - 1 }
    if (!isbench) next
    name = $1
    sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
    if (name ~ /^BenchmarkEstimatePath\//) {
        # BenchmarkEstimatePath/flat/m=4096 -> estpath_flat_m4096
        key = name
        sub(/^BenchmarkEstimatePath\//, "estpath_", key)
        sub(/\/m=/, "_m", key)
    } else if (name ~ /^BenchmarkServeEstimateBatch\//) {
        # BenchmarkServeEstimateBatch/workers=4 -> serve_batch_w4
        key = name
        sub(/^BenchmarkServeEstimateBatch\/workers=/, "serve_batch_w", key)
    } else if (name ~ /^BenchmarkServeEstimateStream\//) {
        # BenchmarkServeEstimateStream/workers=4 -> serve_stream_w4
        key = name
        sub(/^BenchmarkServeEstimateStream\/workers=/, "serve_stream_w", key)
    } else if (name ~ /^BenchmarkServeEstimateAlloc\//) {
        # BenchmarkServeEstimateAlloc/single -> serve_alloc_single
        key = name
        sub(/^BenchmarkServeEstimateAlloc\//, "serve_alloc_", key)
    } else if (name ~ /^BenchmarkServeBin\//) {
        # BenchmarkServeBin/single -> serve_bin_single
        key = name
        sub(/^BenchmarkServeBin\//, "serve_bin_", key)
    } else if (name ~ /^BenchmarkSnapshotLoad\//) {
        # BenchmarkSnapshotLoad/binary_m16384 -> snapshot_load_binary_m16384
        key = name
        sub(/^BenchmarkSnapshotLoad\//, "snapshot_load_", key)
    } else if (name ~ /^BenchmarkObsDisabled\//) {
        # BenchmarkObsDisabled/span -> obs_disabled_span
        key = name
        sub(/^BenchmarkObsDisabled\//, "obs_disabled_", key)
    } else if (name ~ /^BenchmarkSelLoad\//) {
        # BenchmarkSelLoad/single_p99 -> selload_single_p99 (the recorded
        # ns/op is that arm+class open-loop intended-start p99, not throughput)
        key = name
        sub(/^BenchmarkSelLoad\//, "selload_", key)
    } else {
        key = (name in id) ? id[name] : name
    }
    bench[key] = name
    ns[key] = $nsfield + 0
    order[n++] = key
}
END {
    printf "{\n"
    printf "  \"generated_by\": \"scripts/bench.sh\",\n"
    printf "  \"pattern\": \"%s\",\n", pattern
    printf "  \"benchtime\": \"%s\",\n", benchtime
    if (baseline != "")
        printf "  \"baseline\": \"%s\",\n", baseline
    printf "  \"benchmarks\": {\n"
    nregress = 0
    for (i = 0; i < n; i++) {
        key = order[i]
        printf "    \"%s\": {\"bench\": \"%s\", \"ns_per_op\": %.0f", key, bench[key], ns[key]
        if (key in base && ns[key] > 0) {
            speedup = base[key] / ns[key]
            printf ", \"baseline_ns_per_op\": %.0f, \"speedup_vs_baseline\": %.2f", base[key], speedup
            # The regression gate only judges cross-file comparisons (the
            # whole point of -baseline); intra-run reference arms below
            # measure a designed gap, not a regression.
            if (speedup < 0.90)
                regress[nregress++] = sprintf("%s: %.0f -> %.0f ns/op (%.2fx)", key, base[key], ns[key], speedup)
        } else {
            # Intra-run baselines for benchmarks that carry their own
            # reference arm: the flat kernel at the same bucket count for
            # the estimate-path arms, the single-worker run for batched
            # serving throughput.
            ref = ""
            if (key ~ /^estpath_(bvh|cached)_m/) {
                ref = key
                sub(/^estpath_[a-z]+_/, "estpath_flat_", ref)
            } else if (key ~ /^serve_batch_w/ && key != "serve_batch_w1") {
                ref = "serve_batch_w1"
            } else if (key ~ /^serve_stream_w/ && key != "serve_stream_w1") {
                ref = "serve_stream_w1"
            } else if (key == "serve_bin_single") {
                ref = "serve_bin_http_single"
            } else if (key == "serve_bin_batch") {
                ref = "serve_bin_http_batch"
            } else if (key ~ /^snapshot_load_binary_/) {
                ref = key
                sub(/^snapshot_load_binary_/, "snapshot_load_json_", ref)
            }
            if (ref != "" && ref in ns && ns[key] > 0)
                printf ", \"baseline\": \"%s\", \"baseline_ns_per_op\": %.0f, \"speedup_vs_baseline\": %.2f", ref, ns[ref], ns[ref] / ns[key]
        }
        printf "}%s\n", (i < n - 1) ? "," : ""
    }
    printf "  }\n}\n"
    if (nregress > 0) {
        printf "bench.sh: %d benchmark(s) regressed more than 10%% vs %s:\n", nregress, baseline > "/dev/stderr"
        for (i = 0; i < nregress; i++)
            printf "  %s\n", regress[i] > "/dev/stderr"
        exit 1
    }
}
' "$RAW" > "$OUT" || { echo "wrote $OUT (REGRESSION GATE FAILED)" >&2; exit 1; }

echo "wrote $OUT"
