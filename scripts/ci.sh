#!/bin/sh
# CI entry point: formatting gate + the full tier-1 verification
# (build, vet, selvet static analysis with a seeded-violation self-check,
# tests, race suite, benchmark smoke). Usable locally and from the
# GitHub Actions workflow; requires only the Go toolchain.
set -eux

cd "$(dirname "$0")/.."

# On CI, pin the Go build cache to a stable path so the workflow's cache
# step can restore it between runs — the race suite and benchmark smoke
# recompile most of the tree and dominate cold-cache wall time. Local
# runs keep their already-warm default cache.
if [ "${CI:-}" = "true" ]; then
    GOCACHE="${GOCACHE:-$HOME/.cache/go-build-repro}"
    export GOCACHE
fi

# gofmt gate: a nonempty file list is a failure, printed for the log.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "ci.sh: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

sh scripts/verify.sh
