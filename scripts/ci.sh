#!/bin/sh
# CI entry point: formatting gate + the full tier-1 verification
# (build, vet, selvet static analysis with a seeded-violation self-check,
# tests, race suite, benchmark smoke). Usable locally and from the
# GitHub Actions workflow; requires only the Go toolchain.
set -eux

cd "$(dirname "$0")/.."

# gofmt gate: a nonempty file list is a failure, printed for the log.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "ci.sh: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

sh scripts/verify.sh
