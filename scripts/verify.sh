#!/bin/sh
# Tier-1 verification: build + vet everything, gate the tree on the
# project's own static analyzers (selvet), run the full test suite, then
# re-run every internal package under the race detector (the serve
# package's whole contract is race-freedom, the parallel engine and the
# sweep fan-out are the other concurrent subsystems, and keeping the rest
# race-clean is cheap insurance).
set -eux

go build ./...
go vet ./...

# Static-analysis gate: the determinism, concurrency, numeric, and
# serving-path contracts (detrand, maprange, floateq, lockheld,
# errdiscard, poolcapture, zeroalloc, poolpair, atomicmix, cowshare,
# obslabel) must hold on every package — findings fail the build.
# -strict-suppressions additionally fails on any //selvet:ignore line
# that no longer suppresses a finding, so the exemption surface cannot
# grow stale as code changes underneath it.
go run ./cmd/selvet -strict-suppressions ./...

# The serving hot path is the contract that matters most in production:
# re-sweep it explicitly so a selvet scope regression (e.g. a package
# accidentally dropped from the walk) cannot silently skip the estimate
# cache (lockheld: no I/O or estimation under the cache mutex) or the
# batched fan-out (poolcapture: index-owned writes only). The obs layer
# rides along: its exposition must stay deterministic (detrand, maprange)
# since /metrics pages are diffed byte-for-byte in tests. internal/online
# is in the sweep because its whole contract is deterministic pure-compute
# updates (detrand: no clocks — latency timing lives in the serve layer).
go run ./cmd/selvet ./internal/serve ./internal/parallel ./internal/core ./internal/bvh ./internal/obs ./internal/online ./internal/gmm ./internal/wirebin ./internal/modelio ./internal/load

# Prove the gate can fail: the seeded-violation fixture must be flagged.
# If selvet ever exits 0 here, the analyzers have gone blind and the
# clean run above means nothing.
if go run ./cmd/selvet ./internal/analysis/testdata/src/detrand >/dev/null 2>&1; then
    echo "verify.sh: selvet failed to flag the seeded violation fixture" >&2
    exit 1
fi

# Per-analyzer seeded-violation self-checks for the CFG/dataflow
# analyzers: each one, run alone over its own fixture, must still flag
# it. A shared fixture hit by a *different* analyzer would mask one
# analyzer going blind, so the subset runs are the real proof.
for a in zeroalloc poolpair atomicmix cowshare obslabel; do
    if go run ./cmd/selvet -run "$a" "./internal/analysis/testdata/src/$a" >/dev/null 2>&1; then
        echo "verify.sh: selvet -run $a missed its seeded violations" >&2
        exit 1
    fi
done

go test ./...
go test -race ./internal/...
# The metrics registry and span tracer are read by exposition handlers
# while every request and trainer writes to them; their race test is the
# gate for that contract, run explicitly so it cannot fall out of the
# ./internal/... sweep unnoticed.
go test -race ./internal/obs/...
# Online-learning contract gates, run explicitly for the same reason:
# the copy-on-write publish path must stay torn-state-free under
# concurrent estimates + online updates + retrain hot-swaps, and the
# seeded determinism self-check must keep holding — the same feedback
# stream yields byte-identical final weights regardless of estimate
# concurrency.
go test -race -run 'TestOnlineCOWRace|TestOnlineDeterminism' ./internal/serve
go test -race ./internal/online
go test -run 'TestOnlineDeterminism|TestDeterministicFold' ./internal/serve ./internal/online
# Benchmark smoke: one iteration of the fig9 sweep under the Quick preset
# plus one pass over the estimate-path kernels and the batched serving
# endpoint, so a perf regression that breaks either harness is caught here
# rather than in scripts/bench.sh.
go test -run '^$' -bench 'BenchmarkFig09$' -benchtime 1x .
go test -run '^$' -bench 'BenchmarkEstimatePath/|BenchmarkServeEstimateBatch/|BenchmarkServeEstimateStream/' -benchtime 1x .
# Wire-path zero-allocation gate: the steady-state single-estimate path
# through the full mux (pooled codecs, arena parse, hand-rolled encode)
# must measure exactly 0 allocs/op — this is the contract DESIGN.md §13
# documents, and any new per-request allocation fails the test.
go test -run 'TestEstimateHandlerZeroAlloc' -count=1 ./internal/serve
# Stream endpoint concurrency gate: per-connection pooled state and the
# registry's COW publication must stay tear-free under concurrent streams
# and model hot-swaps; the BVH Reweight path gets the same treatment since
# streaming estimates read trees that online learning republishes.
go test -race -run 'TestEstimateStreamConcurrentWithSwaps' -count=1 ./internal/serve
go test -race -run 'TestReweightConcurrentNoTear' -count=1 ./internal/bvh
# Observability zero-cost gate: the disabled span path must stay at
# 0 allocs/op (TestObsDisabledAllocs fails the suite otherwise; the
# benchmark arm here keeps the ns/op number visible in verify output).
go test -run 'TestObsDisabledAllocs' -bench 'BenchmarkObsDisabled/' -benchtime 1000x .
# Binary wire protocol gates (DESIGN.md §15): the frame codec must stay
# race-clean, the decoder must survive its fuzz corpus, binary estimates
# must be bit-identical to the JSON path, the per-frame server path must
# measure exactly 0 allocs/op, and pooled per-connection state must stay
# tear-free under concurrent connections + model hot-swaps.
go test -race -count=1 ./internal/wirebin
go test -run 'FuzzDecodeRequest' -count=1 ./internal/wirebin
go test -race -run 'TestBinJSONEquivalence|TestBinConcurrentSwaps' -count=1 ./internal/serve
go test -run 'TestBinFrameZeroAlloc' -count=1 ./internal/serve
# Binary snapshot gates: load must seed the BVH (no rebuild on
# Accelerate) and corrupted/truncated snapshots must fail typed.
go test -run 'TestBinaryRoundTripEstimates|TestBinaryLoadSeedsIndex|TestBinaryCorruption' -count=1 ./internal/modelio
# Load-harness gates (DESIGN.md §16). First the library contracts: the
# open-loop schedule must be byte-identical across worker counts and the
# shared latency reporter must render the same bytes at any fill
# concurrency — the determinism that makes one run's artifact comparable
# to the next.
go test -race -run 'TestScheduleDeterministicAcrossWorkers|TestReporterByteIdentity|TestOpenLoopSmoke' -count=1 ./internal/load
# Then the harness end-to-end with the SLO gate ACTIVE: a short mixed
# open-loop run against the in-process server must satisfy the committed
# smoke manifest (zero errors, zero feedback loss, sane tails) — selload
# exits nonzero on violation, which fails this script.
SELLOAD_REPORT=$(mktemp)
go run ./cmd/selload -self -rate 300 -duration 2s -seed 1 -workers 4 \
    -slo cmd/selload/testdata/slo_smoke.json -o "$SELLOAD_REPORT"
rm -f "$SELLOAD_REPORT"
# Prove the SLO gate can fail: the seeded-violation manifest (an
# impossible p99 bound) must exit nonzero. If it ever passes, the gate
# has gone blind and the clean run above certifies nothing.
if go run ./cmd/selload -self -rate 200 -duration 1s -seed 1 \
    -slo cmd/selload/testdata/slo_violate.json -o /dev/null >/dev/null 2>&1; then
    echo "verify.sh: selload SLO gate passed the seeded-violation manifest" >&2
    exit 1
fi
# One pass over the open-loop latency arms so a harness break surfaces
# here rather than in scripts/bench.sh.
go test -run '^$' -bench 'BenchmarkSelLoad/' -benchtime 1x .
