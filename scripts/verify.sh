#!/bin/sh
# Tier-1 verification: build + vet everything, run the full test suite,
# then re-run the concurrent subsystems under the race detector (the serve
# package's whole contract is race-freedom, and internal/core carries the
# Model concurrency-contract test).
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./internal/serve/... ./internal/core/...
# The parallel engine and the sweep fan-out are the other concurrent
# subsystems; race-check them too.
go test -race ./internal/parallel/... ./internal/experiments/...
# Benchmark smoke: one iteration of the fig9 sweep under the Quick preset,
# so a perf regression that breaks the harness is caught here rather than
# in scripts/bench.sh.
go test -run '^$' -bench 'BenchmarkFig09$' -benchtime 1x .
