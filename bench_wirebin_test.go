package selest

// Binary wire protocol benchmarks (DESIGN.md §15): single-estimate and
// batched round trips over real TCP, with hand-rolled persistent HTTP/1.1
// arms measured in the same run as the fairness baseline. net/http's
// client allocates per response, which would charge the HTTP rows for
// client-side costs the comparison is not about, so both arms use raw
// sockets and preformatted request bytes. BenchmarkSnapshotLoad compares
// cold model load + Accelerate for the JSON and binary snapshot formats.

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/modelio"
	"repro/internal/serve"
	"repro/internal/wirebin"
)

// benchServer starts one Server with both the HTTP handler and the
// binary listener on ephemeral ports, serving a 4096-bucket model with
// the estimate cache disabled.
func benchServer(b *testing.B) (httpAddr, binAddr string) {
	b.Helper()
	model := estPathModel(4096)
	core.Accelerate(model)
	s := serve.NewServer(serve.Options{EstimateCacheSize: -1})
	s.Registry().Set(serve.DefaultModelName, "bench", model)

	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	hsrv := &http.Server{Handler: s.Handler()}
	go hsrv.Serve(hln)
	b.Cleanup(func() { hsrv.Close() })

	bln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = s.ServeBin(ctx, bln) }()
	b.Cleanup(func() { cancel(); <-done })

	return hln.Addr().String(), bln.Addr().String()
}

// httpConn is a persistent HTTP/1.1 connection that replays one
// preformatted request per round trip and drains Content-Length-framed
// responses, so the measured cost is the server and the wire, not a
// client library.
type httpConn struct {
	conn net.Conn
	br   *bufio.Reader
	req  []byte
}

func dialHTTP(b *testing.B, addr, path, body string) *httpConn {
	b.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { conn.Close() })
	req := fmt.Sprintf("POST %s HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		path, addr, len(body), body)
	return &httpConn{conn: conn, br: bufio.NewReaderSize(conn, 1<<16), req: []byte(req)}
}

func (h *httpConn) roundTrip() error { return h.roundTripReq(h.req) }

func (h *httpConn) roundTripReq(req []byte) error {
	if _, err := h.conn.Write(req); err != nil {
		return err
	}
	status, err := h.br.ReadString('\n')
	if err != nil {
		return err
	}
	if !strings.Contains(status, " 200 ") {
		return fmt.Errorf("response status %q", strings.TrimSpace(status))
	}
	clen, chunked := -1, false
	for {
		line, err := h.br.ReadString('\n')
		if err != nil {
			return err
		}
		if line == "\r\n" {
			break
		}
		if v, ok := strings.CutPrefix(line, "Content-Length: "); ok {
			if _, err := fmt.Sscanf(v, "%d", &clen); err != nil {
				return err
			}
		}
		if strings.HasPrefix(line, "Transfer-Encoding: chunked") {
			chunked = true
		}
	}
	if chunked {
		for {
			line, err := h.br.ReadString('\n')
			if err != nil {
				return err
			}
			var size int
			if _, err := fmt.Sscanf(strings.TrimSpace(line), "%x", &size); err != nil {
				return fmt.Errorf("bad chunk size %q", strings.TrimSpace(line))
			}
			if _, err := h.br.Discard(size + 2); err != nil { // chunk + CRLF
				return err
			}
			if size == 0 {
				return nil
			}
		}
	}
	if clen < 0 {
		return fmt.Errorf("response without Content-Length")
	}
	if _, err := h.br.Discard(clen); err != nil {
		return err
	}
	return nil
}

// BenchmarkServeBin measures full round trips over loopback TCP: the
// binary protocol against persistent-connection HTTP/1.1 on the same
// server in the same run. scripts/bench.sh records the binary rows
// with the matching http rows as intra-run baselines.
func BenchmarkServeBin(b *testing.B) {
	httpAddr, binAddr := benchServer(b)

	queries := estPathQueries(256)
	ranges := make([]geom.Range, len(queries))
	for i, bq := range queries {
		ranges[i] = bq
	}
	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	for i, bq := range queries {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"lo":[%g,%g],"hi":[%g,%g]}`, bq.Lo[0], bq.Lo[1], bq.Hi[0], bq.Hi[1])
	}
	sb.WriteString(`]}`)
	batchBody := sb.String()

	// The single arms cycle the same 256-query workload mix as the
	// batch arms and BenchmarkEstimatePath, so per-op cost reflects the
	// workload's estimate distribution rather than one fixed box.
	b.Run("single", func(b *testing.B) {
		c, err := wirebin.Dial(binAddr)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		if _, _, err := c.Estimate("", ranges[0]); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.Estimate("", ranges[i%len(ranges)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("http_single", func(b *testing.B) {
		singleReqs := make([][]byte, len(queries))
		for i, bq := range queries {
			body := fmt.Sprintf(`{"query":{"lo":[%g,%g],"hi":[%g,%g]}}`, bq.Lo[0], bq.Lo[1], bq.Hi[0], bq.Hi[1])
			singleReqs[i] = []byte(fmt.Sprintf("POST /v1/estimate HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
				httpAddr, len(body), body))
		}
		h := dialHTTP(b, httpAddr, "/v1/estimate", `{"query":{"lo":[0.2,0.3],"hi":[0.6,0.7]}}`)
		if err := h.roundTrip(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := h.roundTripReq(singleReqs[i%len(singleReqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		c, err := wirebin.Dial(binAddr)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		var ests []float64
		if ests, _, err = c.EstimateBatch("", ranges, ests); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ests, _, err = c.EstimateBatch("", ranges, ests); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*float64(len(ranges))/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("http_batch", func(b *testing.B) {
		h := dialHTTP(b, httpAddr, "/v1/estimate", batchBody)
		if err := h.roundTrip(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := h.roundTrip(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*float64(len(queries))/b.Elapsed().Seconds(), "queries/s")
	})
}

// BenchmarkSnapshotLoad measures cold-start model load from in-memory
// snapshot bytes through core.Accelerate, ready to serve. The binary
// format carries the BVH, so its Accelerate is a no-op; the JSON row
// pays a full parse plus an index build.
func BenchmarkSnapshotLoad(b *testing.B) {
	const m = 16384
	model := estPathModel(m)
	core.Accelerate(model)

	var jbuf bytes.Buffer
	if err := modelio.Save(&jbuf, model); err != nil {
		b.Fatal(err)
	}
	var bbuf bytes.Buffer
	if err := modelio.SaveBinary(&bbuf, model); err != nil {
		b.Fatal(err)
	}

	for _, row := range []struct {
		name string
		data []byte
	}{
		{fmt.Sprintf("json_m%d", m), jbuf.Bytes()},
		{fmt.Sprintf("binary_m%d", m), bbuf.Bytes()},
	} {
		b.Run(row.name, func(b *testing.B) {
			b.SetBytes(int64(len(row.data)))
			for i := 0; i < b.N; i++ {
				lm, err := modelio.LoadAnyBytes(row.data)
				if err != nil {
					b.Fatal(err)
				}
				core.Accelerate(lm)
			}
		})
	}
}
