package selest

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper (regenerating the experiment at the Quick preset and reporting
// headline metrics), plus ablation benchmarks for the design choices called
// out in DESIGN.md §5.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem ./...
//
// Full-size runs of individual experiments are available through
// cmd/selbench (-preset full).

import (
	"io"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/hist"
	"repro/internal/kdtree"
	"repro/internal/linalg"
	"repro/internal/ptshist"
	"repro/internal/quadtree"
	"repro/internal/quicksel"
	"repro/internal/solver"
	"repro/internal/workload"
)

// benchExperiment runs a registered experiment once per iteration and
// reports its total row count (a proxy for completed sweep points).
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		results, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for _, r := range results {
			r.Render(io.Discard)
			rows += len(r.Rows)
		}
		b.ReportMetric(float64(rows), "rows")
	}
}

func BenchmarkFig09(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10to12(b *testing.B) { benchExperiment(b, "fig10_12") }
func BenchmarkFig13(b *testing.B)     { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)     { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)     { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)     { benchExperiment(b, "fig17") }
func BenchmarkFig18to19(b *testing.B) { benchExperiment(b, "fig18_19") }
func BenchmarkFig20to21(b *testing.B) { benchExperiment(b, "fig20_21") }
func BenchmarkFig22to23(b *testing.B) { benchExperiment(b, "fig22_23") }
func BenchmarkFig24to29(b *testing.B) { benchExperiment(b, "fig24_29") }
func BenchmarkTable1(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkTable3(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)    { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)    { benchExperiment(b, "table5") }

// Appendix B panels.
func BenchmarkFigAppendixForest(b *testing.B) { benchExperiment(b, "figB_forest_dd") }

// --- fixtures for the ablation benchmarks -----------------------------------

func benchWorkload(b *testing.B, n int) ([]core.LabeledQuery, []core.LabeledQuery, *workload.Generator) {
	b.Helper()
	ds := dataset.Power(8000, 1).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 42)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, n, 200)
	return train, test, g
}

// Ablation: weight-estimation solver, NNLS vs projected gradient
// (DESIGN.md §5). Reports held-out RMS so the accuracy cost of the faster
// solver is visible next to its speed.
func benchSolver(b *testing.B, method solver.Method) {
	train, test, _ := benchWorkload(b, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := &hist.Trainer{Dim: 2, Opts: hist.Options{MaxBuckets: 300, Solver: method}}
		m, err := tr.TrainHist(train)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(core.RMS(m, test), "rms")
	}
}

func BenchmarkAblationSolverNNLS(b *testing.B) { benchSolver(b, solver.MethodNNLS) }
func BenchmarkAblationSolverPGD(b *testing.B)  { benchSolver(b, solver.MethodPGD) }

// Ablation: QUADHIST's selectivity-guided split rule (Algorithm 2) vs a
// geometry-only rule that splits wherever queries overlap, ignoring
// selectivities. The paper argues the guided rule avoids wasting buckets
// on sparse regions.
func benchSplitRule(b *testing.B, guided bool) {
	train, test, _ := benchWorkload(b, 150)
	qsamples := make([]quadtree.Sample, len(train))
	for i, z := range train {
		s := z.Sel
		if !guided {
			s = 1 // geometry-only: every overlap splits
		}
		qsamples[i] = quadtree.Sample{R: z.R, S: s}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := quadtree.BuildFromQueries(2, qsamples, 0.02, quadtree.WithMaxLeaves(600))
		buckets := tree.Leaves()
		a := core.DesignMatrixBoxes(train, buckets)
		w, err := solver.Weights(a, core.Selectivities(train))
		if err != nil {
			b.Fatal(err)
		}
		m := &hist.Model{Buckets: buckets, Weights: w}
		b.ReportMetric(core.RMS(m, test), "rms")
		b.ReportMetric(float64(len(buckets)), "buckets")
	}
}

func BenchmarkAblationSplitRuleGuided(b *testing.B)       { benchSplitRule(b, true) }
func BenchmarkAblationSplitRuleGeometryOnly(b *testing.B) { benchSplitRule(b, false) }

// Ablation: PTSHIST's 0.9/0.1 interior/uniform bucket mix vs all-interior
// and all-uniform (DESIGN.md §5).
func benchPtsMix(b *testing.B, frac float64) {
	train, test, _ := benchWorkload(b, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := &ptshist.Trainer{Dim: 2, Opts: ptshist.Options{K: 600, Seed: 7, InteriorFraction: frac}}
		m, err := tr.TrainHist(train)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(core.RMS(m, test), "rms")
	}
}

func BenchmarkAblationPtsMixPaper(b *testing.B)       { benchPtsMix(b, 0.9) }
func BenchmarkAblationPtsMixAllInterior(b *testing.B) { benchPtsMix(b, 0.999) }
func BenchmarkAblationPtsMixAllUniform(b *testing.B)  { benchPtsMix(b, 0.001) }

// Ablation: kd-tree vs brute-force workload labeling.
func BenchmarkAblationLabelingKDTree(b *testing.B) {
	ds := dataset.Power(20000, 1).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 42)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Generate(spec, 100)
	}
}

func BenchmarkAblationLabelingBruteForce(b *testing.B) {
	ds := dataset.Power(20000, 1).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 42)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	queries := g.Generate(spec, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, z := range queries {
			kdtree.BruteCount(ds.Points, z.R)
		}
	}
}

// Micro-benchmarks of the hot paths underneath every experiment.
func BenchmarkDesignMatrix2D(b *testing.B) {
	train, _, _ := benchWorkload(b, 200)
	tr := hist.New(2, 800)
	m, err := tr.TrainHist(train[:50])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DesignMatrixBoxes(train, m.Buckets)
	}
}

func BenchmarkEstimate(b *testing.B) {
	train, test, _ := benchWorkload(b, 200)
	m, err := hist.New(2, 800).TrainHist(train)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Estimate(test[i%len(test)].R)
	}
}

func BenchmarkNNLSMedium(b *testing.B) {
	train, _, _ := benchWorkload(b, 120)
	m, err := hist.New(2, 240).TrainHist(train[:40])
	if err != nil {
		b.Fatal(err)
	}
	a := core.DesignMatrixBoxes(train, m.Buckets)
	s := core.Selectivities(train)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.SimplexWeights(a, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPGDLarge(b *testing.B) {
	train, _, _ := benchWorkload(b, 300)
	m, err := hist.New(2, 1200).TrainHist(train[:80])
	if err != nil {
		b.Fatal(err)
	}
	a := core.DesignMatrixBoxes(train, m.Buckets)
	s := core.Selectivities(train)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.SimplexPGD(a, s, 300)
	}
}

func BenchmarkMatVec(b *testing.B) {
	const m, n = 500, 2000
	a := linalg.NewMatrix(m, n)
	for i := range a.Data {
		a.Data[i] = float64(i%97) / 97
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%31) / 31
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(x)
	}
}

// Theorem 2.1 calculator sanity at benchmark time: cheap, but keeps the
// theory path exercised by the bench suite too.
func BenchmarkSampleComplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := 2 + i%6
		_ = SampleComplexityOrthogonal(0.1, 0.05, d)
		_ = strconv.Itoa(d)
	}
}

// Ablation: parallel vs sequential design-matrix assembly (DESIGN.md §5).
func benchDesignWorkers(b *testing.B, workers int) {
	train, _, _ := benchWorkload(b, 400)
	m, err := hist.New(2, 1600).TrainHist(train[:100])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DesignMatrixBoxesWith(train, m.Buckets, workers)
	}
}

func BenchmarkAblationDesignSequential(b *testing.B) { benchDesignWorkers(b, 1) }
func BenchmarkAblationDesignParallel(b *testing.B)   { benchDesignWorkers(b, runtime.GOMAXPROCS(0)) }

// Extension experiments as benches too.
func BenchmarkExtDisc(b *testing.B) { benchExperiment(b, "ext_disc") }
func BenchmarkExtGMM(b *testing.B)  { benchExperiment(b, "ext_gmm") }

func BenchmarkExtSemiAlg(b *testing.B)   { benchExperiment(b, "ext_semialg") }
func BenchmarkExtOptimizer(b *testing.B) { benchExperiment(b, "ext_optimizer") }

func BenchmarkExtNoise(b *testing.B)    { benchExperiment(b, "ext_noise") }
func BenchmarkExtPredTime(b *testing.B) { benchExperiment(b, "ext_predtime") }

func BenchmarkExtCrossing(b *testing.B) { benchExperiment(b, "ext_crossing") }
func BenchmarkExtTheory(b *testing.B)   { benchExperiment(b, "ext_theory") }
func BenchmarkExtOnline(b *testing.B)   { benchExperiment(b, "ext_online") }

func BenchmarkFigAppendixDMV(b *testing.B)    { benchExperiment(b, "figB_dmv") }
func BenchmarkFigAppendixCensus(b *testing.B) { benchExperiment(b, "figB_census") }

// Ablation: QuickSel weight program — regularized simplex (default, valid
// distribution) vs the original exact KKT QP (possibly-negative weights).
func benchQuickSelMode(b *testing.B, exact bool) {
	train, test, _ := benchWorkload(b, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := &quicksel.Trainer{Dim: 2, Opts: quicksel.Options{Seed: 3, ExactQP: exact}}
		m, err := tr.Train(train)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(core.RMS(m, test), "rms")
	}
}

func BenchmarkAblationQuickSelSimplex(b *testing.B) { benchQuickSelMode(b, false) }
func BenchmarkAblationQuickSelExactQP(b *testing.B) { benchQuickSelMode(b, true) }
