package selest

// Estimate hot-path benchmarks (DESIGN.md §10): the three serving kernels
// — flat O(m) scan, BVH index, BVH behind the serving cache — at growing
// bucket counts, plus end-to-end batched /v1/estimate throughput by
// worker count. scripts/bench.sh folds these into BENCH_<n>.json with
// intra-run speedups (flat kernel and single-worker serving as baselines).

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/bvh"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/hist"
	"repro/internal/rng"
	"repro/internal/serve"
)

// estPathModel builds a k×k grid histogram (m = k² buckets) with
// deterministic simplex weights. Training a 16k-bucket model would
// dominate the benchmark run without changing what Estimate measures, so
// the serving model is constructed directly.
func estPathModel(m int) *hist.Model {
	k := int(math.Round(math.Sqrt(float64(m))))
	if k*k != m {
		panic("estPathModel: m must be a perfect square")
	}
	buckets := make([]geom.Box, 0, m)
	weights := make([]float64, 0, m)
	total := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			buckets = append(buckets, geom.NewBox(
				geom.Point{float64(i) / float64(k), float64(j) / float64(k)},
				geom.Point{float64(i+1) / float64(k), float64(j+1) / float64(k)},
			))
			w := float64((i*31+j*17)%97 + 1)
			weights = append(weights, w)
			total += w
		}
	}
	for i := range weights {
		weights[i] /= total
	}
	return &hist.Model{Buckets: buckets, Weights: weights}
}

// estPathQueries returns n deterministic random boxes over [0,1]².
func estPathQueries(n int) []geom.Box {
	r := rng.New(7)
	qs := make([]geom.Box, n)
	for i := range qs {
		c := geom.Point{r.Float64(), r.Float64()}
		qs[i] = geom.BoxFromCenter(c, []float64{0.02 + 0.3*r.Float64(), 0.02 + 0.3*r.Float64()})
	}
	return qs
}

// BenchmarkEstimatePath is the per-query latency of the three estimate
// kernels at each bucket count the acceptance criteria name.
func BenchmarkEstimatePath(b *testing.B) {
	queries := estPathQueries(256)
	for _, m := range []int{256, 1024, 4096, 16384} {
		model := estPathModel(m)
		b.Run(fmt.Sprintf("flat/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bvh.EstimateFlat(model.Buckets, model.Weights, queries[i%len(queries)])
			}
		})
		b.Run(fmt.Sprintf("bvh/m=%d", m), func(b *testing.B) {
			core.Accelerate(model) // build outside the timed region
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				model.Estimate(queries[i%len(queries)])
			}
		})
		b.Run(fmt.Sprintf("cached/m=%d", m), func(b *testing.B) {
			core.Accelerate(model)
			cache := serve.NewEstimateCache(4 * len(queries))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				key, ok := serve.QueryKey(q)
				if !ok {
					b.Fatal("unkeyable query")
				}
				if _, hit := cache.Get("bench", 1, key); hit {
					continue
				}
				cache.Put("bench", 1, key, model.Estimate(q))
			}
		})
	}
}

// BenchmarkServeEstimateBatch is end-to-end batched /v1/estimate
// throughput by worker count, cache disabled so every iteration measures
// real evaluation (repeated identical batches would otherwise be pure
// cache hits). Reports queries/s alongside ns/op.
func BenchmarkServeEstimateBatch(b *testing.B) {
	model := estPathModel(4096)
	core.Accelerate(model)
	queries := estPathQueries(256)
	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	for i, q := range queries {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"lo":[%g,%g],"hi":[%g,%g]}`, q.Lo[0], q.Lo[1], q.Hi[0], q.Hi[1])
	}
	sb.WriteString(`]}`)
	body := sb.String()

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := serve.NewServer(serve.Options{EstimateWorkers: workers, EstimateCacheSize: -1})
			s.Registry().Set(serve.DefaultModelName, "bench", model)
			h := s.Handler()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest("POST", "/v1/estimate", strings.NewReader(body))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("HTTP %d: %s", w.Code, w.Body.String())
				}
			}
			b.ReportMetric(float64(b.N)*float64(len(queries))/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkServeEstimateStream is end-to-end /v1/estimate/stream
// throughput by worker count: each iteration pushes 256 NDJSON query
// lines through the handler and drains the result lines. Reports
// queries/s alongside ns/op.
func BenchmarkServeEstimateStream(b *testing.B) {
	model := estPathModel(4096)
	core.Accelerate(model)
	queries := estPathQueries(256)
	var sb strings.Builder
	for _, q := range queries {
		fmt.Fprintf(&sb, `{"lo":[%g,%g],"hi":[%g,%g]}`+"\n", q.Lo[0], q.Lo[1], q.Hi[0], q.Hi[1])
	}
	body := sb.String()

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := serve.NewServer(serve.Options{EstimateWorkers: workers, EstimateCacheSize: -1})
			s.Registry().Set(serve.DefaultModelName, "bench", model)
			h := s.Handler()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest("POST", "/v1/estimate/stream", strings.NewReader(body))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("HTTP %d: %s", w.Code, w.Body.String())
				}
				if n := strings.Count(w.Body.String(), "\n"); n != len(queries) {
					b.Fatalf("%d result lines, want %d", n, len(queries))
				}
			}
			b.ReportMetric(float64(b.N)*float64(len(queries))/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkServeEstimateAlloc is the steady-state single-estimate path
// the zero-allocation gate (TestEstimateHandlerZeroAlloc) protects:
// one box query per request through the full mux. The allocs/op column
// is the headline number — it must stay at 0.
func BenchmarkServeEstimateAlloc(b *testing.B) {
	model := estPathModel(4096)
	core.Accelerate(model)
	s := serve.NewServer(serve.Options{EstimateCacheSize: -1})
	s.Registry().Set(serve.DefaultModelName, "bench", model)
	h := s.Handler()
	body := `{"query":{"lo":[0.2,0.3],"hi":[0.6,0.7]}}`

	b.Run("single", func(b *testing.B) {
		// Warm the pools outside the measured region, then reuse one
		// request object: httptest.NewRequest per iteration would charge
		// the benchmark for harness allocations the real server never
		// makes per-request.
		req := httptest.NewRequest("POST", "/v1/estimate", nil)
		rd := strings.NewReader(body)
		req.Body = http.NoBody
		w := httptest.NewRecorder()
		run := func() {
			rd.Reset(body)
			req.Body = readCloser{rd}
			req.ContentLength = int64(len(body))
			w.Body.Reset()
			w.Code = http.StatusOK
			h.ServeHTTP(w, req)
		}
		for i := 0; i < 8; i++ {
			run()
			if w.Code != http.StatusOK {
				b.Fatalf("HTTP %d: %s", w.Code, w.Body.String())
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	})
}

// readCloser adapts a strings.Reader into a no-op-close request body.
type readCloser struct{ *strings.Reader }

func (readCloser) Close() error { return nil }
